/**
 * @file
 * Report-layer tests: the consumption half of the observability loop.
 *
 * Covers the strict JSON parser (positions, raw number text, duplicate
 * keys), the JSONL trace reader (byte-identical round trip including
 * nan/inf-as-null args, malformed-line diagnostics), span aggregation,
 * the trace invariant checker (every valid board/target/attack combo
 * passes; each invariant fires on a crafted violation), the metrics
 * reservoir cap, the power layer's voltage Counter events, Prometheus
 * exposition, campaign report generation (byte-deterministic across
 * job counts, baseline regression detection), and the voltboot_cli
 * `report` subcommand's exit-code conventions end to end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "campaign/campaign.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"
#include "power/power_domain.hh"
#include "report/campaign_json.hh"
#include "report/heartbeat.hh"
#include "report/invariants.hh"
#include "report/json.hh"
#include "report/prometheus.hh"
#include "report/report.hh"
#include "report/span_aggregator.hh"
#include "report/trace_reader.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

using namespace voltboot;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        (std::filesystem::path(testing::TempDir()) / name).string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// --- JSON parser -----------------------------------------------------

TEST(ReportJson, ParsesScalarsAndContainers)
{
    const report::JsonValue v = report::parseJson(
        R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5e3}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.0);
    const report::JsonValue &b = *v.find("b");
    ASSERT_TRUE(b.isArray());
    ASSERT_EQ(b.items.size(), 3u);
    EXPECT_TRUE(b.items[0].boolean);
    EXPECT_TRUE(b.items[1].isNull());
    EXPECT_EQ(b.items[2].text, "x");
    EXPECT_DOUBLE_EQ(v.find("c")->find("d")->number, -2500.0);
}

TEST(ReportJson, NumbersKeepRawSourceText)
{
    const report::JsonValue v =
        report::parseJson(R"([0.1, 1e300, -0, 5000.000001])");
    EXPECT_EQ(v.items[0].text, "0.1");
    EXPECT_EQ(v.items[1].text, "1e300");
    EXPECT_EQ(v.items[2].text, "-0");
    EXPECT_EQ(v.items[3].text, "5000.000001");
}

TEST(ReportJson, StringEscapesDecode)
{
    const report::JsonValue v =
        report::parseJson(R"(["a\"b\\c\nd", "\u0041\u00e9"])");
    EXPECT_EQ(v.items[0].text, "a\"b\\c\nd");
    EXPECT_EQ(v.items[1].text, "A\xc3\xa9");
}

TEST(ReportJson, RejectsDuplicateKeysWithPosition)
{
    try {
        report::parseJson("{\"k\": 1,\n \"k\": 2}", "dup.json");
        FAIL() << "duplicate key accepted";
    } catch (const report::JsonParseError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("duplicate object key"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("dup.json:2:"),
                  std::string::npos);
    }
}

TEST(ReportJson, RejectsTrailingContentAndBadGrammar)
{
    EXPECT_THROW(report::parseJson("{} x"), report::JsonParseError);
    EXPECT_THROW(report::parseJson("{\"a\":}"), report::JsonParseError);
    EXPECT_THROW(report::parseJson("[1,]"), report::JsonParseError);
    EXPECT_THROW(report::parseJson("01"), report::JsonParseError);
    EXPECT_THROW(report::parseJson("\"\\q\""), report::JsonParseError);
    EXPECT_THROW(report::parseJson(""), report::JsonParseError);
}

// --- trace reader round trip -----------------------------------------

/** A deliberately adversarial event sequence: fractional timestamps
 * that stress the microsecond round trip, every arg type, non-finite
 * numbers, escaped strings. */
std::vector<trace::TraceEvent>
adversarialEvents()
{
    std::vector<trace::TraceEvent> events;

    trace::TraceEvent a;
    a.phase = trace::Phase::Instant;
    a.category = "power";
    a.name = "probe_attach";
    a.ts = Seconds(1.0 / 3.0);
    a.args.emplace_back("domain", "VDD_CORE");
    a.args.emplace_back("voltage_v", 0.8);
    a.args.emplace_back("escaped", std::string("a\"b\\c\nd"));
    events.push_back(a);

    trace::TraceEvent b;
    b.phase = trace::Phase::Complete;
    b.category = "core";
    b.name = "attack.step3_power_cycle";
    b.ts = Seconds(0.4999999999);
    b.dur = Seconds(1.2345678901e-3);
    b.args.emplace_back("ok", true);
    b.args.emplace_back("count", uint64_t{12345678901234567ull});
    b.args.emplace_back("nan_arg", std::nan(""));
    b.args.emplace_back("inf_arg", INFINITY);
    events.push_back(b);

    trace::TraceEvent c;
    c.phase = trace::Phase::Counter;
    c.category = "power";
    c.name = "voltage.VDD_CORE";
    c.ts = Seconds(0.7777777777777);
    c.args.emplace_back("v", 0.7512345);
    events.push_back(c);

    trace::TraceEvent d;
    d.phase = trace::Phase::Instant;
    d.category = "sram";
    d.name = "sram_decay";
    d.ts = Seconds(123456.789012345); // large timestamp, fractional us
    d.args.emplace_back("fraction", 1e-300);
    d.args.emplace_back("neg", -2.5);
    events.push_back(d);

    return events;
}

TEST(TraceReader, RoundTripIsByteIdentical)
{
    const std::vector<trace::TraceEvent> events = adversarialEvents();
    const std::string jsonl = trace::toJsonl(events);
    const std::vector<trace::TraceEvent> parsed =
        report::readTrace(jsonl);
    ASSERT_EQ(parsed.size(), events.size());
    EXPECT_EQ(trace::toJsonl(parsed), jsonl);

    // Field-level spot checks beyond the byte contract.
    EXPECT_EQ(parsed[0].phase, trace::Phase::Instant);
    EXPECT_EQ(std::string(parsed[0].category), "power");
    EXPECT_EQ(parsed[1].phase, trace::Phase::Complete);
    EXPECT_EQ(parsed[1].args[2].json, "null"); // nan serialized as null
    EXPECT_EQ(parsed[1].args[3].json, "null"); // inf serialized as null
    EXPECT_EQ(parsed[2].phase, trace::Phase::Counter);
}

TEST(TraceReader, RoundTripSurvivesRepeatedCycles)
{
    std::string jsonl = trace::toJsonl(adversarialEvents());
    for (int cycle = 0; cycle < 3; ++cycle) {
        const std::string again =
            trace::toJsonl(report::readTrace(jsonl));
        EXPECT_EQ(again, jsonl) << "cycle " << cycle;
        jsonl = again;
    }
}

TEST(TraceReader, KnownCategoriesInternToStableStorage)
{
    const char *a = report::internCategory("power");
    const char *b = report::internCategory("power");
    EXPECT_EQ(a, b);
    const char *x = report::internCategory("custom_layer");
    const char *y = report::internCategory("custom_layer");
    EXPECT_EQ(x, y);
    EXPECT_EQ(std::string(x), "custom_layer");
}

TEST(TraceReader, MalformedLinesCarryDiagnostics)
{
    auto expectError = [](const std::string &line,
                          const std::string &needle) {
        try {
            report::readTraceLine(line, "t.jsonl", 7);
            FAIL() << "accepted: " << line;
        } catch (const report::JsonParseError &e) {
            EXPECT_EQ(e.line(), 7u) << line;
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "message '" << e.what() << "' lacks '" << needle
                << "'";
        }
    };

    expectError(R"({"ts_us": 0, "cat": "c", "ph": "i", "name": "n")",
                "unterminated object");
    expectError(R"({"cat": "c", "ph": "i", "name": "n", "args": {}})",
                "missing required key \"ts_us\"");
    expectError(R"({"ts_us": 0, "cat": "c", "ph": "z", "name": "n",)"
                R"( "args": {}})",
                "unknown phase");
    expectError(R"({"ts_us": 0, "cat": "c", "ph": "X", "name": "n",)"
                R"( "args": {}})",
                "require \"dur_us\"");
    expectError(R"({"ts_us": 0, "cat": "c", "ph": "i", "name": "n",)"
                R"( "dur_us": 1, "args": {}})",
                "only valid on \"X\" events");
    expectError(R"({"ts_us": 0, "cat": "c", "ph": "i", "name": "n",)"
                R"( "bogus": 1, "args": {}})",
                "unknown trace key");
    expectError(R"({"ts_us": 0, "cat": "c", "ph": "i", "name": "n",)"
                R"( "args": {"k": [1]}})",
                "must be scalars");

    // Whole-document reads point at the offending line.
    const std::string doc =
        trace::toJsonlLine(adversarialEvents()[0]) + "\n" + "{broken\n";
    try {
        report::readTrace(doc, "multi.jsonl");
        FAIL() << "accepted corrupt document";
    } catch (const report::JsonParseError &e) {
        EXPECT_EQ(e.line(), 2u);
    }

    EXPECT_THROW(report::readTrace("\n", "blank.jsonl"),
                 report::JsonParseError);
}

// --- span aggregation ------------------------------------------------

std::vector<trace::TraceEvent>
nestedSpanEvents()
{
    // Children emit before parents, matching trace::Span semantics:
    //   parent [0, 10ms] { child_a [1, 4ms], child_b [5, 8ms] }
    std::vector<trace::TraceEvent> events;
    auto span = [](const char *name, double start_ms, double end_ms) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Complete;
        ev.category = "core";
        ev.name = name;
        ev.ts = Seconds::milliseconds(start_ms);
        ev.dur = Seconds::milliseconds(end_ms - start_ms);
        return ev;
    };
    events.push_back(span("child_a", 1, 4));
    events.push_back(span("child_b", 5, 8));
    events.push_back(span("parent", 0, 10));
    return events;
}

TEST(SpanAggregator, ReconstructsNestingAndSelfTime)
{
    const report::SpanAggregate agg =
        report::SpanAggregate::build(nestedSpanEvents());

    ASSERT_EQ(agg.roots().size(), 1u);
    const report::SpanNode &parent = agg.roots()[0];
    EXPECT_EQ(parent.name, "parent");
    ASSERT_EQ(parent.children.size(), 2u);
    EXPECT_EQ(parent.children[0].name, "child_a");
    EXPECT_EQ(parent.children[1].name, "child_b");
    // 10ms total minus 3ms + 3ms of children.
    EXPECT_NEAR(parent.self_s, 0.004, 1e-12);

    EXPECT_EQ(agg.spans().at("core/parent").count, 1u);
    EXPECT_NEAR(agg.spans().at("core/child_a").total_s, 0.003, 1e-12);
    EXPECT_EQ(agg.totalEvents(), 3u);

    const std::string tree = agg.renderTree();
    EXPECT_NE(tree.find("core/parent"), std::string::npos);
    EXPECT_NE(tree.find("  - core/child_a"), std::string::npos);
}

TEST(SpanAggregator, ExtractsVoltageWaveforms)
{
    std::vector<trace::TraceEvent> events;
    for (double v : {1.0, 0.75, 0.0}) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Counter;
        ev.category = "power";
        ev.name = "voltage.VDD_X";
        ev.ts = Seconds(events.size() * 0.001);
        ev.args.emplace_back("v", v);
        events.push_back(ev);
    }
    const report::SpanAggregate agg =
        report::SpanAggregate::build(events);
    ASSERT_EQ(agg.waveforms().count("VDD_X"), 1u);
    const auto &wf = agg.waveforms().at("VDD_X");
    ASSERT_EQ(wf.size(), 3u);
    EXPECT_DOUBLE_EQ(wf[0].volts, 1.0);
    EXPECT_DOUBLE_EQ(wf[2].volts, 0.0);
    EXPECT_NE(agg.renderWaveforms().find("`VDD_X`"), std::string::npos);
}

// --- invariants: every real combination passes -----------------------

struct Combo
{
    const char *board;
    const char *target;
    const char *attack;
};

std::vector<Combo>
validCombos()
{
    std::vector<Combo> combos;
    for (const char *board : {"pi3", "pi4"}) {
        for (const char *target :
             {"dcache", "icache", "regs", "tlb", "btb"})
            combos.push_back({board, target, "voltboot"});
        for (const char *target : {"dcache", "icache"})
            combos.push_back({board, target, "coldboot"});
    }
    combos.push_back({"imx53", "iram", "voltboot"});
    return combos;
}

TEST(Invariants, EveryBoardTargetAttackComboPasses)
{
    for (const Combo &combo : validCombos()) {
        const SweepGrid grid = SweepGrid::parse(
            std::string("board=") + combo.board + ";target=" +
            combo.target + ";attack=" + combo.attack +
            ";off-ms=5;seeds=1");
        trace::MemoryTraceSink sink;
        {
            trace::Scope scope(sink);
            runTrial(grid.at(0), 0x5eed);
        }
        ASSERT_FALSE(sink.events().empty())
            << combo.board << "/" << combo.target << "/" << combo.attack;
        const std::vector<report::Violation> violations =
            report::checkTraceInvariants(sink.events());
        EXPECT_TRUE(violations.empty())
            << combo.board << "/" << combo.target << "/" << combo.attack
            << ":\n"
            << report::renderViolations(violations);

        // Every real trace also honours the byte round trip.
        const std::string jsonl = trace::toJsonl(sink.events());
        EXPECT_EQ(trace::toJsonl(report::readTrace(jsonl)), jsonl)
            << combo.board << "/" << combo.target << "/" << combo.attack;
    }
}

// --- invariants: each check fires on a crafted violation -------------

trace::TraceEvent
instantAt(const char *cat, const char *name, double ts_s,
          std::vector<trace::Arg> args = {})
{
    trace::TraceEvent ev;
    ev.phase = trace::Phase::Instant;
    ev.category = cat;
    ev.name = name;
    ev.ts = Seconds(ts_s);
    ev.args = std::move(args);
    return ev;
}

trace::TraceEvent
counterAt(const char *name, double ts_s, double volts)
{
    trace::TraceEvent ev;
    ev.phase = trace::Phase::Counter;
    ev.category = "power";
    ev.name = name;
    ev.ts = Seconds(ts_s);
    ev.args.emplace_back("v", volts);
    return ev;
}

bool
hasViolation(const std::vector<report::Violation> &violations,
             const std::string &invariant)
{
    for (const report::Violation &v : violations)
        if (invariant == v.invariant)
            return true;
    return false;
}

TEST(Invariants, DetectsBackwardsTime)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(instantAt("power", "late", 0.5));
    events.push_back(instantAt("power", "early", 0.1));
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "monotonic_time"));
}

TEST(Invariants, DetectsNegativeDuration)
{
    trace::TraceEvent ev;
    ev.phase = trace::Phase::Complete;
    ev.category = "core";
    ev.name = "bad_span";
    ev.ts = Seconds(1.0);
    ev.dur = Seconds(-0.5);
    EXPECT_TRUE(hasViolation(
        report::checkTraceInvariants(std::vector{ev}),
        "monotonic_time"));
}

TEST(Invariants, DetectsPartialSpanOverlap)
{
    std::vector<trace::TraceEvent> events;
    auto span = [](double s, double e) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Complete;
        ev.category = "core";
        ev.name = "span";
        ev.ts = Seconds(s);
        ev.dur = Seconds(e - s);
        return ev;
    };
    events.push_back(span(0.0, 0.6)); // [0, 0.6]
    events.push_back(span(0.4, 1.0)); // straddles the first's end
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "span_nesting"));
}

TEST(Invariants, DetectsNegativeVoltage)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(instantAt("power", "domain_scale", 0.0,
                               {{"domain", "VDD_X"},
                                {"from_v", 1.0},
                                {"to_v", -0.1}}));
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "nonnegative_voltage"));
}

TEST(Invariants, DetectsProbeHoldDip)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(instantAt("power", "probe_attach", 0.0,
                               {{"domain", "VDD_X"},
                                {"voltage_v", 0.8}}));
    events.push_back(instantAt("power", "probe_transient", 0.001,
                               {{"domain", "VDD_X"},
                                {"v_min", 0.7},
                                {"v_settled", 0.78}}));
    events.push_back(counterAt("voltage.VDD_X", 0.002, 0.2)); // dip!
    const auto violations = report::checkTraceInvariants(events);
    EXPECT_TRUE(hasViolation(violations, "probe_hold"));

    // The same sample at the hold floor is fine.
    events.back() = counterAt("voltage.VDD_X", 0.002, 0.7);
    EXPECT_TRUE(report::checkTraceInvariants(events).empty());
}

TEST(Invariants, DetectsAttackStepDisorder)
{
    std::vector<trace::TraceEvent> events;
    auto step = [](const char *name, double s, double e) {
        trace::TraceEvent ev;
        ev.phase = trace::Phase::Complete;
        ev.category = "core";
        ev.name = name;
        ev.ts = Seconds(s);
        ev.dur = Seconds(e - s);
        return ev;
    };
    events.push_back(step("attack.step4_extract", 0.0, 0.1));
    events.push_back(step("attack.step3_power_cycle", 0.2, 0.3));
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "attack_step_order"));

    // A fresh run restarting at steps 1-2 is legitimate.
    std::vector<trace::TraceEvent> ok;
    ok.push_back(step("attack.steps12_probe", 0.0, 0.1));
    ok.push_back(step("attack.step3_power_cycle", 0.2, 0.3));
    ok.push_back(step("attack.step4_extract", 0.4, 0.5));
    ok.push_back(step("attack.steps12_probe", 0.6, 0.7));
    ok.push_back(step("attack.step3_power_cycle", 0.8, 0.9));
    EXPECT_TRUE(report::checkTraceInvariants(ok).empty());
}

trace::TraceEvent
glitchSpan(double start_s, double end_s, const char *domain,
           double nominal_v, double depth_v)
{
    trace::TraceEvent ev;
    ev.phase = trace::Phase::Complete;
    ev.category = "power";
    ev.name = "glitch.pulse";
    ev.ts = Seconds(start_s);
    ev.dur = Seconds(end_s - start_s);
    ev.args.emplace_back("domain", domain);
    ev.args.emplace_back("nominal_v", nominal_v);
    ev.args.emplace_back("depth_v", depth_v);
    return ev;
}

TEST(Invariants, GlitchBoundsAcceptsAWellFormedPulse)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(counterAt("voltage.VDD_CORE", 1.0e-9, 0.6));
    events.push_back(counterAt("voltage.VDD_CORE", 2.0e-9, 0.5));
    events.push_back(counterAt("voltage.VDD_CORE", 3.0e-9, 0.8));
    events.push_back(glitchSpan(0.5e-9, 3.0e-9, "VDD_CORE", 0.8, 0.3));
    EXPECT_TRUE(report::checkTraceInvariants(events).empty());
}

TEST(Invariants, DetectsGlitchExcursionBeyondDepth)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(counterAt("voltage.VDD_CORE", 1.0e-9, 0.4)); // !
    events.push_back(counterAt("voltage.VDD_CORE", 3.0e-9, 0.8));
    events.push_back(glitchSpan(0.5e-9, 3.0e-9, "VDD_CORE", 0.8, 0.3));
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "glitch_bounds"));
}

TEST(Invariants, DetectsGlitchThatNeverRecovers)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(counterAt("voltage.VDD_CORE", 1.0e-9, 0.6));
    events.push_back(counterAt("voltage.VDD_CORE", 2.9e-9, 0.6));
    events.push_back(glitchSpan(0.5e-9, 3.0e-9, "VDD_CORE", 0.8, 0.3));
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "glitch_bounds"));
}

TEST(Invariants, DetectsGlitchPulseWithoutSamples)
{
    std::vector<trace::TraceEvent> events;
    events.push_back(glitchSpan(0.5e-9, 3.0e-9, "VDD_CORE", 0.8, 0.3));
    EXPECT_TRUE(hasViolation(report::checkTraceInvariants(events),
                             "glitch_bounds"));
}

TEST(Invariants, RealGlitchTrialTracePasses)
{
    const SweepGrid grid = SweepGrid::parse(
        "attack=glitch;glitch-off-ns=109;glitch-width-ns=2;"
        "glitch-depth=0.5;seeds=1");
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        runTrial(grid.at(0), 0x5eed);
    }
    bool has_pulse = false;
    for (const trace::TraceEvent &ev : sink.events())
        has_pulse |= ev.phase == trace::Phase::Complete &&
                     ev.name == "glitch.pulse";
    EXPECT_TRUE(has_pulse);
    const std::vector<report::Violation> violations =
        report::checkTraceInvariants(sink.events());
    EXPECT_TRUE(violations.empty())
        << report::renderViolations(violations);
}

// --- metrics reservoir cap -------------------------------------------

TEST(MetricsCap, ExactMomentsAndStablePercentilesAtCap)
{
    trace::Metrics m;
    const size_t n = 3 * trace::Metrics::kHistogramSampleCap;
    // Feed the values 0..n-1 exactly once each, in a stride-permuted
    // order so the stream is stationary: decimation keeps a
    // recency-weighted subset, which is only a fair sample of the
    // distribution when the distribution does not drift over the
    // stream. (A deliberately drifting stream is exactly the case
    // where only count/mean/min/max stay exact.)
    const size_t stride = 7919; // prime, coprime to n = 3 * 2^12
    for (size_t i = 0; i < n; ++i)
        m.observe("h", static_cast<double>(i * stride % n));

    const trace::HistogramSummary h = m.snapshot().histograms.at("h");
    // Count, sum-derived mean, min and max are exact past the cap.
    EXPECT_EQ(h.count, n);
    EXPECT_DOUBLE_EQ(h.min, 0.0);
    EXPECT_DOUBLE_EQ(h.max, static_cast<double>(n - 1));
    EXPECT_DOUBLE_EQ(h.mean, static_cast<double>(n - 1) / 2.0);
    // Percentiles come from the decimated reservoir but stay within a
    // couple percent of the true order statistics.
    const double range = static_cast<double>(n);
    EXPECT_NEAR(h.p50, 0.50 * range, 0.02 * range);
    EXPECT_NEAR(h.p90, 0.90 * range, 0.02 * range);
    EXPECT_NEAR(h.p99, 0.99 * range, 0.02 * range);
}

TEST(MetricsCap, UnderCapRemainsExact)
{
    trace::Metrics m;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0})
        m.observe("h", v);
    const trace::HistogramSummary h = m.snapshot().histograms.at("h");
    EXPECT_EQ(h.count, 5u);
    EXPECT_DOUBLE_EQ(h.mean, 3.0);
    EXPECT_DOUBLE_EQ(h.p50, 3.0);
    EXPECT_DOUBLE_EQ(h.max, 5.0);
}

// --- power layer voltage counters ------------------------------------

TEST(PowerCounters, DomainEmitsVoltageSamples)
{
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        PowerDomain dom("VDD_TEST", Volt(1.0), RegulatorKind::Buck);
        dom.powerUp(Seconds(0.0), Temperature::celsius(25));
        trace::setSimTime(Seconds(0.001));
        dom.scaleVoltage(Volt(0.9));
        VoltageProbe probe;
        probe.voltage = Volt(0.8);
        dom.attachProbe(probe);
        trace::setSimTime(Seconds(0.002));
        dom.powerDown(Seconds(0.002));
        dom.detachProbe();
    }

    const report::SpanAggregate agg =
        report::SpanAggregate::build(sink.events());
    ASSERT_EQ(agg.waveforms().count("VDD_TEST"), 1u);
    const auto &wf = agg.waveforms().at("VDD_TEST");
    // power-up, scale, droop minimum, settled, detach-to-zero.
    ASSERT_EQ(wf.size(), 5u);
    EXPECT_DOUBLE_EQ(wf[0].volts, 1.0);
    EXPECT_DOUBLE_EQ(wf[1].volts, 0.9);
    EXPECT_LE(wf[2].volts, wf[3].volts); // v_min <= v_settled
    EXPECT_GT(wf[2].volts, 0.0);
    EXPECT_DOUBLE_EQ(wf[4].volts, 0.0);

    // The emitted sequence satisfies the trace invariants, probe_hold
    // included.
    EXPECT_TRUE(report::checkTraceInvariants(sink.events()).empty());
}

// --- Prometheus exposition -------------------------------------------

TEST(Prometheus, RendersCountersGaugesAndSummaries)
{
    trace::MetricsSnapshot snap;
    snap.counters["campaign.queue_grabs"] = 12;
    snap.gauges["campaign.jobs"] = 4;
    trace::HistogramSummary h;
    h.count = 8;
    h.mean = 0.5;
    h.min = 0.1;
    h.max = 1.0;
    h.p50 = 0.4;
    h.p90 = 0.9;
    h.p99 = 1.0;
    snap.histograms["campaign.trial_wall_s"] = h;

    const std::string expected =
        "# TYPE voltboot_campaign_queue_grabs counter\n"
        "voltboot_campaign_queue_grabs 12\n"
        "# TYPE voltboot_campaign_jobs gauge\n"
        "voltboot_campaign_jobs 4\n"
        "# TYPE voltboot_campaign_trial_wall_s summary\n"
        "voltboot_campaign_trial_wall_s{quantile=\"0.5\"} 0.4\n"
        "voltboot_campaign_trial_wall_s{quantile=\"0.9\"} 0.9\n"
        "voltboot_campaign_trial_wall_s{quantile=\"0.99\"} 1\n"
        "voltboot_campaign_trial_wall_s_sum 4\n"
        "voltboot_campaign_trial_wall_s_count 8\n";
    EXPECT_EQ(report::toPrometheus(snap), expected);
}

TEST(Prometheus, EmptySnapshotRendersEmpty)
{
    EXPECT_EQ(report::toPrometheus(trace::MetricsSnapshot{}), "");
}

TEST(Prometheus, EscapesLabelValues)
{
    EXPECT_EQ(report::escapeLabelValue("plain"), "plain");
    EXPECT_EQ(report::escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(report::escapeLabelValue("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(report::escapeLabelValue("line1\nline2"),
              "line1\\nline2");
    EXPECT_EQ(report::escapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Prometheus, ConstantLabelsOnEverySample)
{
    trace::MetricsSnapshot snap;
    snap.counters["c"] = 1;
    snap.gauges["g"] = 2;
    trace::HistogramSummary h;
    h.count = 2;
    h.mean = 1.0;
    h.p50 = h.p90 = h.p99 = 1.0;
    snap.histograms["h"] = h;

    const report::PrometheusLabels labels = {
        {"grid", "board=a\nseed=\"1\""}, {"job", "0"}};
    const std::string expected =
        "# TYPE voltboot_c counter\n"
        "voltboot_c{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\"} 1\n"
        "# TYPE voltboot_g gauge\n"
        "voltboot_g{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\"} 2\n"
        "# TYPE voltboot_h summary\n"
        "voltboot_h{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\","
        "quantile=\"0.5\"} 1\n"
        "voltboot_h{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\","
        "quantile=\"0.9\"} 1\n"
        "voltboot_h{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\","
        "quantile=\"0.99\"} 1\n"
        "voltboot_h_sum{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\"} 2\n"
        "voltboot_h_count{grid=\"board=a\\nseed=\\\"1\\\"\",job=\"0\"}"
        " 2\n";
    EXPECT_EQ(report::toPrometheus(snap, labels), expected);
}

TEST(Prometheus, NanAndInfRenderAsExpositionLiterals)
{
    trace::MetricsSnapshot snap;
    snap.gauges["eta"] = std::numeric_limits<double>::quiet_NaN();
    snap.gauges["hi"] = std::numeric_limits<double>::infinity();
    snap.gauges["lo"] = -std::numeric_limits<double>::infinity();
    const std::string out = report::toPrometheus(snap);
    EXPECT_NE(out.find("voltboot_eta NaN\n"), std::string::npos);
    EXPECT_NE(out.find("voltboot_hi +Inf\n"), std::string::npos);
    EXPECT_NE(out.find("voltboot_lo -Inf\n"), std::string::npos);
}

TEST(Prometheus, ExpositionIsByteDeterministic)
{
    // Insertion order must not leak into the exposition: the snapshot
    // maps are ordered, so two snapshots with the same contents render
    // byte-identically regardless of how they were built.
    trace::MetricsSnapshot a;
    a.counters["z.last"] = 3;
    a.counters["a.first"] = 1;
    a.gauges["m.mid"] = 2;
    trace::MetricsSnapshot b;
    b.gauges["m.mid"] = 2;
    b.counters["a.first"] = 1;
    b.counters["z.last"] = 3;
    const std::string ra = report::toPrometheus(a);
    EXPECT_EQ(ra, report::toPrometheus(b));
    // Counters render before gauges, names sorted within each kind.
    EXPECT_LT(ra.find("voltboot_a_first"), ra.find("voltboot_z_last"));
    EXPECT_LT(ra.find("voltboot_z_last"), ra.find("voltboot_m_mid"));
}

// --- heartbeat stream reader -----------------------------------------

namespace
{

std::string
heartbeatLine(uint64_t seq, bool final_sample, uint64_t completed,
              double rate)
{
    std::ostringstream os;
    os << "{\"schema\": \"voltboot-heartbeat-v1\", \"seq\": " << seq
       << ", \"final\": " << (final_sample ? "true" : "false")
       << ", \"campaign\": {\"seed\": 77, \"grid\": \"board=x\", "
          "\"total_trials\": 24}"
       << ", \"progress\": {\"started\": " << completed
       << ", \"completed\": " << completed << ", \"won\": " << completed
       << ", \"failed\": 0, \"skipped\": 0}"
       << ", \"counters\": {\"trials_completed\": " << completed
       << ", \"cells_processed\": " << completed * 1000 << "}"
       << ", \"wall\": {\"unix_ms\": " << 1000000 + seq * 1000
       << ", \"elapsed_s\": " << seq << ".0, \"trials_per_sec\": "
       << rate << ", \"trials_per_sec_ewma\": " << rate
       << ", \"eta_s\": 5.0}}";
    return os.str();
}

} // namespace

TEST(Heartbeat, ReadsStreamAndToleratesTornTail)
{
    const std::string dir = tempDir("heartbeat_read");
    const std::string path = dir + "/hb.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << heartbeatLine(1, false, 4, 4.0) << "\n";
        out << "\n"; // blank line: skipped
        out << "{\"schema\": \"something-else\", \"seq\": 9}\n";
        out << heartbeatLine(2, false, 9, 5.0) << "\n";
        out << heartbeatLine(3, true, 24, 5.5) << "\n";
        // Torn tail write from a killed process: no newline, cut mid-
        // object. Must be dropped without losing the lines before it.
        out << "{\"schema\": \"voltboot-heartbeat-v1\", \"seq\": 4, ";
    }
    const std::vector<report::Heartbeat> beats =
        report::readHeartbeats(path);
    ASSERT_EQ(beats.size(), 3u);
    EXPECT_EQ(beats[0].seq, 1u);
    EXPECT_FALSE(beats[0].final_sample);
    EXPECT_EQ(beats[0].campaign_seed, 77u);
    EXPECT_EQ(beats[0].grid_spec, "board=x");
    EXPECT_EQ(beats[0].total_trials, 24u);
    EXPECT_EQ(beats[0].completed, 4u);
    EXPECT_EQ(beats[0].counters.at("cells_processed"), 4000u);
    EXPECT_DOUBLE_EQ(beats[1].trials_per_sec, 5.0);
    EXPECT_TRUE(beats[2].final_sample);
    EXPECT_EQ(beats[2].completed, 24u);
    EXPECT_EQ(beats[2].unix_ms, 1003000u);

    const std::string summary = report::renderHeartbeatSummary(beats);
    EXPECT_NE(summary.find("clean shutdown"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Heartbeat, MissingFinalSampleReadsAsInterrupted)
{
    const std::string dir = tempDir("heartbeat_interrupted");
    const std::string path = dir + "/hb.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << heartbeatLine(1, false, 4, 4.0) << "\n";
        out << heartbeatLine(2, false, 9, 5.0) << "\n";
    }
    const std::vector<report::Heartbeat> beats =
        report::readHeartbeats(path);
    ASSERT_EQ(beats.size(), 2u);
    const std::string summary = report::renderHeartbeatSummary(beats);
    EXPECT_NE(summary.find("interrupted"), std::string::npos);
    EXPECT_EQ(summary.find("clean shutdown"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Heartbeat, EmptyStreamRendersEmpty)
{
    const std::string dir = tempDir("heartbeat_empty");
    const std::string path = dir + "/hb.jsonl";
    std::ofstream(path).close();
    EXPECT_TRUE(report::readHeartbeats(path).empty());
    EXPECT_EQ(report::renderHeartbeatSummary({}), "");
    std::filesystem::remove_all(dir);
}

// --- counter tracks (campaign progress events) -----------------------

TEST(SpanAggregator, CollectsGenericCounterTracks)
{
    std::vector<trace::TraceEvent> events;
    for (int i = 0; i < 3; ++i) {
        trace::TraceEvent e;
        e.phase = trace::Phase::Counter;
        e.category = "campaign";
        e.name = "progress.done";
        e.ts = Seconds(static_cast<double>(i));
        e.args.push_back(trace::Arg("v", 4 * (i + 1)));
        events.push_back(e);
    }
    const report::SpanAggregate agg =
        report::SpanAggregate::build(events);
    ASSERT_EQ(agg.counterTracks().count("campaign/progress.done"), 1u);
    const auto &track =
        agg.counterTracks().at("campaign/progress.done");
    ASSERT_EQ(track.size(), 3u);
    EXPECT_DOUBLE_EQ(track[0].value, 4.0);
    EXPECT_DOUBLE_EQ(track[2].value, 12.0);
    EXPECT_DOUBLE_EQ(track[2].ts_s, 2.0);
    const std::string md = agg.renderCounterTracks();
    EXPECT_NE(md.find("campaign/progress.done"), std::string::npos);
}

// --- campaign JSON parsing -------------------------------------------

TEST(CampaignJson, RoundTripsThroughResultJson)
{
    CampaignConfig cfg;
    cfg.jobs = 2;
    Campaign campaign(
        SweepGrid::parse("board=pi4;attack=voltboot,coldboot;off-ms=5;"
                         "seeds=1"),
        std::move(cfg));
    const CampaignResult result = campaign.run();

    const report::SweepDoc sweep =
        report::parseSweepJson(result.toJson(true), "sweep.json");
    EXPECT_EQ(sweep.schema, "voltboot-campaign-v1");
    EXPECT_EQ(sweep.campaign_seed, result.campaign_seed);
    ASSERT_EQ(sweep.records.size(), result.records.size());
    EXPECT_EQ(sweep.records[0].board, "pi4");
    EXPECT_TRUE(sweep.has_timing);
    EXPECT_EQ(sweep.jobs, result.jobs);
    EXPECT_EQ(sweep.metrics.histograms.count("campaign.trial_wall_s"),
              1u);

    // The canonical document has no timing section.
    const report::SweepDoc bare =
        report::parseSweepJson(result.toJson(false));
    EXPECT_FALSE(bare.has_timing);
}

TEST(CampaignJson, RejectsSchemaViolations)
{
    EXPECT_THROW(report::parseSweepJson("{}"), report::JsonParseError);
    EXPECT_THROW(
        report::parseSweepJson(
            R"({"schema": "other", "campaign_seed": 1, "grid": "g",)"
            R"( "trials": 0, "records": []})"),
        report::JsonParseError);
    // trials / record-count mismatch.
    EXPECT_THROW(
        report::parseSweepJson(
            R"({"schema": "voltboot-campaign-v1", "campaign_seed": 1,)"
            R"( "grid": "g", "trials": 3, "records": []})"),
        report::JsonParseError);
}

TEST(CampaignJson, ParsesBaseline)
{
    const report::Baseline base = report::parseBaselineJson(
        R"({"bench": "campaign_throughput", "trials": 64, "runs": [)"
        R"({"jobs": 1, "wall_seconds": 8.0, "trials_per_second": 8.0},)"
        R"({"jobs": 4, "wall_seconds": 2.0, "trials_per_second": 32.0})"
        R"(]})");
    EXPECT_EQ(base.bench, "campaign_throughput");
    EXPECT_DOUBLE_EQ(base.bestTrialsPerSecond(), 32.0);
    ASSERT_NE(base.runForJobs(4), nullptr);
    EXPECT_DOUBLE_EQ(base.runForJobs(4)->trials_per_second, 32.0);
    EXPECT_EQ(base.runForJobs(2), nullptr);
}

// --- campaign report -------------------------------------------------

TEST(CampaignReport, ByteDeterministicAcrossJobCounts)
{
    auto reportForJobs = [](unsigned jobs) {
        const std::string dir =
            tempDir("report_jobs_" + std::to_string(jobs));
        CampaignConfig cfg;
        cfg.jobs = jobs;
        cfg.trace_dir = dir;
        Campaign campaign(
            SweepGrid::parse(
                "board=pi4;attack=voltboot,coldboot;off-ms=5;seeds=1"),
            std::move(cfg));
        const CampaignResult result = campaign.run();

        const report::SweepDoc sweep =
            report::parseSweepJson(result.toJson(false));
        report::CampaignReportOptions opts;
        opts.trace_dir = dir;
        opts.check = true;
        const report::CampaignReport rep =
            report::buildCampaignReport(sweep, opts);
        EXPECT_TRUE(rep.problems.empty())
            << (rep.problems.empty() ? std::string()
                                     : rep.problems.front());
        return rep.markdown;
    };

    const std::string md1 = reportForJobs(1);
    const std::string md4 = reportForJobs(4);
    EXPECT_EQ(md1, md4);
    EXPECT_NE(md1.find("## Outcome summary"), std::string::npos);
    EXPECT_NE(md1.find("## Retention vs power-off time"),
              std::string::npos);
    EXPECT_NE(md1.find("invariant check: PASS"), std::string::npos);
    // Canonical sweeps must not leak wall-clock content.
    EXPECT_EQ(md1.find("## Wall clock"), std::string::npos);
}

TEST(CampaignReport, FlagsThroughputRegression)
{
    report::SweepDoc sweep;
    sweep.schema = "voltboot-campaign-v1";
    sweep.grid = "g";
    sweep.has_timing = true;
    sweep.jobs = 4;
    sweep.wall_seconds = 10.0;
    sweep.trials_per_second = 10.0;

    report::Baseline base;
    base.bench = "campaign_throughput";
    base.runs.push_back({4, 1.0, 1000.0});

    report::CampaignReportOptions opts;
    opts.baseline = &base;
    opts.regression_threshold = 0.5;
    const report::CampaignReport rep =
        report::buildCampaignReport(sweep, opts);
    ASSERT_EQ(rep.problems.size(), 1u);
    EXPECT_NE(rep.problems[0].find("throughput_regression"),
              std::string::npos);
    EXPECT_NE(rep.markdown.find("**REGRESSION**"), std::string::npos);

    // Within threshold: no problem.
    base.runs[0].trials_per_second = 15.0;
    EXPECT_TRUE(report::buildCampaignReport(sweep, opts)
                    .problems.empty());
}

TEST(CampaignReport, MissingTraceIsAProblemUnderCheck)
{
    report::SweepDoc sweep;
    sweep.schema = "voltboot-campaign-v1";
    sweep.grid = "g";
    report::SweepRecord rec;
    rec.index = 0;
    rec.board = "pi4";
    rec.target = "dcache";
    rec.attack = "voltboot";
    rec.status = "ok";
    sweep.records.push_back(rec);

    report::CampaignReportOptions opts;
    opts.trace_dir = tempDir("report_missing_traces");
    opts.check = true;
    const report::CampaignReport rep =
        report::buildCampaignReport(sweep, opts);
    ASSERT_EQ(rep.problems.size(), 1u);
    EXPECT_NE(rep.problems[0].find("missing trace file"),
              std::string::npos);

    // Without --check, the gap is reported but not fatal.
    opts.check = false;
    EXPECT_TRUE(report::buildCampaignReport(sweep, opts)
                    .problems.empty());
}

// --- the CLI end to end ----------------------------------------------

#ifdef VOLTBOOT_CLI_PATH

struct CliResult
{
    int exit_code;
    std::string out;
    std::string err;
};

CliResult
runCli(const std::string &args, const std::string &dir)
{
    const std::string out_path = dir + "/cli_stdout.txt";
    const std::string err_path = dir + "/cli_stderr.txt";
    const std::string cmd = std::string(VOLTBOOT_CLI_PATH) + " " + args +
                            " > " + out_path + " 2> " + err_path;
    const int status = std::system(cmd.c_str());
    CliResult r;
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    r.out = readFile(out_path);
    r.err = readFile(err_path);
    return r;
}

TEST(Cli, ReportUsageErrorsExitTwo)
{
    const std::string dir = tempDir("cli_usage");
    EXPECT_EQ(runCli("report", dir).exit_code, 2);
    EXPECT_EQ(runCli("report bogus file", dir).exit_code, 2);
    EXPECT_EQ(runCli("report trace f.jsonl --format prom", dir)
                  .exit_code,
              2);
    EXPECT_EQ(runCli("report trace f.jsonl --bogus", dir).exit_code, 2);
    // A readable usage hint lands on stderr.
    EXPECT_NE(runCli("report", dir).err.find("usage:"),
              std::string::npos);
}

TEST(Cli, ReportTraceChecksAndWritesToStdout)
{
    const std::string dir = tempDir("cli_trace");
    const std::string trace_path = dir + "/trace.jsonl";

    // A real single-trial trace via the library (fast, deterministic).
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        runTrial(SweepGrid::parse(
                     "board=pi4;attack=voltboot;off-ms=5;seeds=1")
                     .at(0),
                 0x5eed);
    }
    CampaignResult::writeFile(trace_path,
                              trace::toJsonl(sink.events()));

    const CliResult ok =
        runCli("report trace " + trace_path + " --check", dir);
    EXPECT_EQ(ok.exit_code, 0) << ok.err;
    EXPECT_NE(ok.out.find("# Trace report"), std::string::npos);
    EXPECT_NE(ok.out.find("PASS"), std::string::npos);

    // `--out -` is the default; an explicit file works too.
    const CliResult filed = runCli("report trace " + trace_path +
                                       " --out " + dir + "/report.md",
                                   dir);
    EXPECT_EQ(filed.exit_code, 0);
    EXPECT_NE(readFile(dir + "/report.md").find("# Trace report"),
              std::string::npos);

    // Unreadable input is a data error: exit 1, not a usage error.
    EXPECT_EQ(runCli("report trace " + dir + "/absent.jsonl", dir)
                  .exit_code,
              1);
}

TEST(Cli, ReportTraceNamesInvariantOnCorruptedTrace)
{
    const std::string dir = tempDir("cli_corrupt");
    const std::string trace_path = dir + "/corrupt.jsonl";

    // A probe-held rail that dips below its own droop minimum.
    std::vector<trace::TraceEvent> events;
    events.push_back(instantAt("power", "probe_attach", 0.0,
                               {{"domain", "VDD_CORE"},
                                {"voltage_v", 0.8}}));
    events.push_back(instantAt("power", "probe_transient", 0.001,
                               {{"domain", "VDD_CORE"},
                                {"v_min", 0.7},
                                {"v_settled", 0.78}}));
    events.push_back(counterAt("voltage.VDD_CORE", 0.002, 0.1));
    CampaignResult::writeFile(trace_path, trace::toJsonl(events));

    const CliResult r =
        runCli("report trace " + trace_path + " --check", dir);
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("probe_hold"), std::string::npos) << r.err;

    // Without --check the same trace renders fine.
    EXPECT_EQ(runCli("report trace " + trace_path, dir).exit_code, 0);
}

TEST(Cli, ReportCampaignEndToEnd)
{
    const std::string dir = tempDir("cli_campaign");
    const std::string traces = dir + "/traces";

    const CliResult sweep = runCli(
        "sweep --grid \"board=pi4;attack=voltboot,coldboot;off-ms=5;"
        "seeds=1\" --jobs 2 --timing --quiet --out " +
            dir + "/sweep.json --trace-dir " + traces,
        dir);
    ASSERT_EQ(sweep.exit_code, 0) << sweep.err;

    const CliResult rep = runCli("report campaign " + dir +
                                     "/sweep.json --trace-dir " +
                                     traces + " --check",
                                 dir);
    EXPECT_EQ(rep.exit_code, 0) << rep.err;
    EXPECT_NE(rep.out.find("# Campaign report"), std::string::npos);
    EXPECT_NE(rep.out.find("invariant check: PASS"), std::string::npos);
    EXPECT_NE(rep.out.find("## Wall clock"), std::string::npos);

    // Prometheus exposition of the sweep's metrics snapshot.
    const CliResult prom = runCli(
        "report campaign " + dir + "/sweep.json --format prom", dir);
    EXPECT_EQ(prom.exit_code, 0) << prom.err;
    EXPECT_NE(prom.out.find("# TYPE voltboot_campaign_trial_wall_s "
                            "summary"),
              std::string::npos);

    // `-` for --metrics goes to stdout.
    const CliResult metrics = runCli(
        "sweep --grid \"board=pi4;attack=voltboot;off-ms=5;seeds=1\" "
        "--jobs 1 --quiet --metrics -",
        dir);
    EXPECT_EQ(metrics.exit_code, 0) << metrics.err;
    EXPECT_NE(metrics.out.find("\"counters\""), std::string::npos);
}

TEST(Cli, SweepListAxesEnumeratesEveryAxis)
{
    const std::string dir = tempDir("cli_axes");
    const CliResult r = runCli("sweep --list-axes", dir);
    EXPECT_EQ(r.exit_code, 0) << r.err;
    for (const char *axis :
         {"board", "target", "attack", "temp", "off-ms", "current",
          "impedance-mohm", "glitch-off-ns", "glitch-width-ns",
          "glitch-depth", "key", "seeds"})
        EXPECT_NE(r.out.find(axis), std::string::npos) << axis;
    EXPECT_NE(r.out.find("unit"), std::string::npos);
    EXPECT_NE(r.out.find("Enumeration order"), std::string::npos);
}

TEST(Cli, GlitchSweepTracesPassTheChecker)
{
    const std::string dir = tempDir("cli_glitch");
    const std::string traces = dir + "/traces";
    const CliResult sweep = runCli(
        "sweep --grid \"attack=glitch;glitch-off-ns=109;"
        "glitch-width-ns=2;glitch-depth=0.04,0.5;seeds=1\" --jobs 1 "
        "--quiet --out " +
            dir + "/sweep.json --trace-dir " + traces,
        dir);
    ASSERT_EQ(sweep.exit_code, 0) << sweep.err;
    for (const char *trial :
         {"/trial_000000.jsonl", "/trial_000001.jsonl"}) {
        const CliResult check =
            runCli("report trace " + traces + trial +
                       " --check --out " + dir + "/report.md",
                   dir);
        EXPECT_EQ(check.exit_code, 0) << trial << ": " << check.err;
    }
}

#endif // VOLTBOOT_CLI_PATH

} // namespace

/**
 * @file
 * Campaign engine tests: grid enumeration and parsing, scheduling
 * determinism (same seed => byte-identical JSON at any job count),
 * failed-trial isolation, abort semantics, and a few real end-to-end
 * trials through the public runner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <tuple>

#include "campaign/campaign.hh"
#include "campaign/campaign_result.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace voltboot;

namespace
{

/** A cheap deterministic stand-in for runTrial: metrics are a pure
 * function of (campaign seed, trial index), like the real thing. */
TrialRecord
fakeTrial(const TrialSpec &spec, uint64_t seed)
{
    TrialRecord rec;
    rec.spec = spec;
    rec.chip_seed = deriveChipSeed(seed, spec.seed_index);
    Rng rng(deriveTrialSeed(seed, spec.index));
    rec.status = TrialStatus::Ok;
    rec.booted = true;
    rec.dump_bytes = 32768;
    rec.bit_error_rate = rng.uniform() * 0.5;
    rec.accuracy = 1.0 - rec.bit_error_rate;
    return rec;
}

TEST(SweepGrid, SizeIsAxisProduct)
{
    SweepGrid grid;
    EXPECT_EQ(grid.size(), 1u);

    grid.boards = {"pi3", "pi4"};
    grid.temps_c = {-80.0, -40.0, 25.0};
    grid.offs_ms = {5.0, 500.0};
    grid.seed_count = 7;
    EXPECT_EQ(grid.size(), 2u * 3u * 2u * 7u);
}

TEST(SweepGrid, EnumerationCoversEveryPointExactlyOnce)
{
    SweepGrid grid;
    grid.boards = {"pi3", "pi4"};
    grid.attacks = {AttackKind::VoltBoot, AttackKind::ColdBoot};
    grid.temps_c = {-110.0, 25.0};
    grid.seed_count = 3;

    std::set<std::tuple<std::string, int, double, uint64_t>> seen;
    uint64_t count = 0;
    for (const TrialSpec &spec : grid) {
        EXPECT_EQ(spec.index, count);
        seen.insert({spec.board, static_cast<int>(spec.attack),
                     spec.temp_c, spec.seed_index});
        ++count;
    }
    EXPECT_EQ(count, grid.size());
    EXPECT_EQ(seen.size(), grid.size()) << "duplicate grid points";
}

TEST(SweepGrid, IndexDecodeOrdering)
{
    SweepGrid grid;
    grid.boards = {"pi3", "pi4"};
    grid.temps_c = {-80.0, 25.0};
    grid.seed_count = 2;

    // Seed index varies fastest, board slowest.
    EXPECT_EQ(grid.at(0).seed_index, 0u);
    EXPECT_EQ(grid.at(1).seed_index, 1u);
    EXPECT_EQ(grid.at(0).board, "pi3");
    EXPECT_EQ(grid.at(grid.size() - 1).board, "pi4");
    EXPECT_EQ(grid.at(0).temp_c, -80.0);
    EXPECT_EQ(grid.at(2).temp_c, 25.0);
}

TEST(SweepGrid, ParseRoundTripsThroughDescribe)
{
    const SweepGrid grid = SweepGrid::parse(
        "board=pi4,imx53;target=dcache,iram;attack=voltboot;"
        "temp=-80,25;off-ms=0.5,500;current=3;impedance-mohm=50;"
        "key=0;seeds=4");
    EXPECT_EQ(grid.size(), 2u * 2u * 2u * 2u * 4u);
    const SweepGrid reparsed = SweepGrid::parse(grid.describe());
    EXPECT_EQ(reparsed.describe(), grid.describe());
    EXPECT_EQ(reparsed.size(), grid.size());
}

TEST(SweepGrid, ParseAcceptsNewlinesAndComments)
{
    const SweepGrid grid = SweepGrid::parse(
        "# retention surface\n"
        "board=pi4\n"
        "attack=coldboot   # control experiment\n"
        "temp=-110,-80\n"
        "seeds=2\n");
    EXPECT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid.attacks[0], AttackKind::ColdBoot);
}

TEST(SweepGrid, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(SweepGrid::parse("bogus-key=1"), FatalError);
    EXPECT_THROW(SweepGrid::parse("temp=12x"), FatalError);
    EXPECT_THROW(SweepGrid::parse("temp="), FatalError);
    EXPECT_THROW(SweepGrid::parse("seeds=0"), FatalError);
    EXPECT_THROW(SweepGrid::parse("target=l9cache"), FatalError);
    EXPECT_THROW(SweepGrid::parse("attack=warmboot"), FatalError);
    EXPECT_THROW(SweepGrid::parse("temp"), FatalError);
    EXPECT_THROW(SweepGrid::parse("key=2"), FatalError);
}

TEST(Campaign, JsonIsByteIdenticalAcrossJobCounts)
{
    SweepGrid grid;
    grid.boards = {"pi3", "pi4"};
    grid.temps_c = {-110.0, -40.0, 25.0};
    grid.offs_ms = {5.0, 50.0};
    grid.seed_count = 8; // 2*3*2*8 = 96 trials

    auto runWith = [&](unsigned jobs) {
        CampaignConfig cfg;
        cfg.jobs = jobs;
        cfg.seed = 1234;
        cfg.runner = fakeTrial;
        return Campaign(grid, cfg).run().toJson();
    };
    const std::string serial = runWith(1);
    EXPECT_EQ(serial, runWith(4));
    EXPECT_EQ(serial, runWith(8));
}

TEST(Campaign, SeedChangesResults)
{
    SweepGrid grid;
    grid.seed_count = 4;
    CampaignConfig a, b;
    a.runner = b.runner = fakeTrial;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(Campaign(grid, a).run().toJson(),
              Campaign(grid, b).run().toJson());
}

TEST(Campaign, ThrowingTrialIsIsolated)
{
    SweepGrid grid;
    grid.seed_count = 32;
    CampaignConfig cfg;
    cfg.jobs = 4;
    cfg.runner = [](const TrialSpec &spec, uint64_t seed) {
        if (spec.index == 7)
            fatal("injected failure");
        if (spec.index == 11)
            throw 42; // non-std exception
        return fakeTrial(spec, seed);
    };
    const CampaignResult result = Campaign(grid, cfg).run();
    ASSERT_EQ(result.records.size(), 32u);
    EXPECT_EQ(result.records[7].status, TrialStatus::Error);
    EXPECT_EQ(result.records[7].detail, "injected failure");
    EXPECT_EQ(result.records[11].status, TrialStatus::Error);
    EXPECT_EQ(result.records[11].detail, "unknown exception");
    const CampaignSummary s = result.summary();
    EXPECT_EQ(s.errors, 2u);
    EXPECT_EQ(s.ok, 30u);
}

TEST(Campaign, UnsupportedComboRecordedAsErrorAndSweepCompletes)
{
    // iRAM only exists on imx53; the pi4 x iram cross combos must be
    // captured as errors without sinking the rest of the campaign.
    SweepGrid grid;
    grid.boards = {"pi4"};
    grid.targets = {TargetRam::Iram};
    CampaignConfig cfg;
    cfg.jobs = 1;
    const CampaignResult result = Campaign(grid, cfg).run();
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].status, TrialStatus::Error);
    EXPECT_NE(result.records[0].detail.find("iRAM"), std::string::npos);
}

TEST(Campaign, AbortSkipsRemainingTrials)
{
    SweepGrid grid;
    grid.seed_count = 64;
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.chunk = 1;
    std::atomic<Campaign *> self{nullptr};
    cfg.runner = [&](const TrialSpec &spec, uint64_t seed) {
        if (spec.index == 9)
            self.load()->requestAbort();
        return fakeTrial(spec, seed);
    };
    Campaign campaign(grid, cfg);
    self.store(&campaign);
    const CampaignResult result = campaign.run();
    const CampaignSummary s = result.summary();
    EXPECT_EQ(s.ok, 10u); // indices 0..9 ran, the rest were skipped
    EXPECT_EQ(s.skipped, 54u);
    EXPECT_EQ(result.records[10].status, TrialStatus::Skipped);
    EXPECT_EQ(result.records[63].status, TrialStatus::Skipped);
}

TEST(Campaign, ProgressCallbackReportsMonotonically)
{
    SweepGrid grid;
    grid.seed_count = 40;
    CampaignConfig cfg;
    cfg.jobs = 4;
    cfg.runner = fakeTrial;
    cfg.progress_every = 10;
    std::atomic<uint64_t> last{0};
    std::atomic<bool> saw_final{false};
    cfg.progress = [&](const CampaignProgress &p) {
        EXPECT_LE(p.done, p.total);
        EXPECT_GE(p.done, last.load());
        last.store(p.done);
        if (p.done == p.total)
            saw_final.store(true);
    };
    Campaign(grid, cfg).run();
    EXPECT_TRUE(saw_final.load());
}

TEST(Campaign, CsvHasHeaderAndOneRowPerTrial)
{
    SweepGrid grid;
    grid.seed_count = 5;
    CampaignConfig cfg;
    cfg.runner = fakeTrial;
    const std::string csv = Campaign(grid, cfg).run().toCsv();
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 6u); // header + 5 records
    EXPECT_EQ(csv.find("index,board,target"), 0u);
}

TEST(Campaign, TimingSectionIsOptIn)
{
    SweepGrid grid;
    CampaignConfig cfg;
    cfg.runner = fakeTrial;
    const CampaignResult result = Campaign(grid, cfg).run();
    EXPECT_EQ(result.toJson().find("\"timing\""), std::string::npos);
    EXPECT_NE(result.toJson(true).find("\"timing\""),
              std::string::npos);
}

// --- Real-trial coverage (each trial builds a full Soc; keep small) ---

TEST(TrialRunner, VoltBootDCacheIsExact)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=voltboot;temp=25;off-ms=5");
    const TrialRecord rec = runTrial(grid.at(0), 99);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_TRUE(rec.probe_attached);
    EXPECT_TRUE(rec.booted);
    EXPECT_EQ(rec.dump_bytes, 32768u);
    EXPECT_DOUBLE_EQ(rec.accuracy, 1.0); // the paper's 100% claim
}

TEST(TrialRunner, ColdBootAtRoomTemperatureRetainsNothing)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=coldboot;temp=25;off-ms=500");
    const TrialRecord rec = runTrial(grid.at(0), 99);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_NEAR(rec.accuracy, 0.5, 0.05); // chance level
}

TEST(TrialRunner, PlantedKeyIsRecoveredUnderVoltBoot)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=voltboot;temp=25;off-ms=5;"
        "key=1");
    const TrialRecord rec = runTrial(grid.at(0), 7);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_TRUE(rec.key_planted);
    EXPECT_TRUE(rec.key_found);
    EXPECT_TRUE(rec.key_exact);
}

// --- glitch axes and the RFC 4180 CSV writer -------------------------

TEST(SweepGrid, GlitchAxesMultiplyAndDecode)
{
    SweepGrid grid = SweepGrid::parse(
        "attack=glitch;glitch-off-ns=100,109;glitch-width-ns=2,4;"
        "glitch-depth=0.1,0.3,0.5;seeds=2");
    EXPECT_EQ(grid.size(), 2u * 2u * 3u * 2u);

    std::set<std::tuple<double, double, double, uint64_t>> seen;
    for (const TrialSpec &spec : grid) {
        EXPECT_EQ(spec.attack, AttackKind::Glitch);
        seen.insert({spec.glitch_off_ns, spec.glitch_width_ns,
                     spec.glitch_depth_v, spec.seed_index});
    }
    EXPECT_EQ(seen.size(), grid.size());

    // The canonical description round-trips, glitch axes included.
    EXPECT_EQ(SweepGrid::parse(grid.describe()).describe(),
              grid.describe());
}

TEST(SweepGrid, DefaultGlitchAxesKeepOldIndicesStable)
{
    // A glitch-free grid must enumerate exactly as it did before the
    // glitch axes existed: the single-element {0} axes are invisible.
    SweepGrid grid = SweepGrid::parse(
        "board=pi3,pi4;temp=-80,25;seeds=3");
    EXPECT_EQ(grid.size(), 12u);
    const TrialSpec spec = grid.at(7);
    EXPECT_EQ(spec.seed_index, 1u);
    EXPECT_DOUBLE_EQ(spec.temp_c, -80.0);
    EXPECT_EQ(spec.board, "pi4");
    EXPECT_DOUBLE_EQ(spec.glitch_off_ns, 0.0);
    EXPECT_DOUBLE_EQ(spec.glitch_width_ns, 0.0);
    EXPECT_DOUBLE_EQ(spec.glitch_depth_v, 0.0);
}

TEST(CsvEscape, RoundTripsCommasQuotesAndNewlines)
{
    const std::vector<std::string> fields{
        "plain",      "with,comma",         "with\"quote",
        "\"quoted\"", "multi\nline\r\nrow", "skip,opcode_corrupt",
        ""};
    std::string row;
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            row += ',';
        row += csvEscape(fields[i]);
    }
    EXPECT_EQ(splitCsvRow(row), fields);
    // Unremarkable fields pass through unquoted.
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("a\"b"), "\"a\"\"b\"");
}

TEST(Campaign, CsvQuotesEmbeddedCommasAndRoundTrips)
{
    CampaignResult result;
    TrialRecord rec;
    rec.spec.index = 0;
    rec.spec.board = "pi4,rev1.4"; // hostile board name
    rec.spec.attack = AttackKind::Glitch;
    rec.status = TrialStatus::Ok;
    rec.glitch_faults = 2;
    rec.glitch_effect = "skip,opcode_corrupt"; // embedded commas
    rec.glitch_bypassed = true;
    rec.detail = "said \"pass\", then crashed";
    result.records.push_back(rec);

    const std::string csv = result.toCsv();
    // Exactly two lines: quoting kept every field on one row.
    size_t newlines = 0;
    for (char c : csv)
        newlines += c == '\n';
    ASSERT_EQ(newlines, 2u);

    const std::string header = csv.substr(0, csv.find('\n'));
    const std::string row = csv.substr(
        csv.find('\n') + 1, csv.size() - csv.find('\n') - 2);
    const std::vector<std::string> cols = splitCsvRow(header);
    const std::vector<std::string> vals = splitCsvRow(row);
    ASSERT_EQ(cols.size(), vals.size());

    std::map<std::string, std::string> byCol;
    for (size_t i = 0; i < cols.size(); ++i)
        byCol[cols[i]] = vals[i];
    EXPECT_EQ(byCol.at("board"), "pi4,rev1.4");
    EXPECT_EQ(byCol.at("glitch_effect"), "skip,opcode_corrupt");
    EXPECT_EQ(byCol.at("glitch_bypassed"), "1");
    EXPECT_EQ(byCol.at("glitch_faults"), "2");
    EXPECT_EQ(byCol.at("detail"), "said \"pass\", then crashed");
}

TEST(Campaign, GlitchSweepIsByteIdenticalAcrossJobCounts)
{
    const SweepGrid grid = SweepGrid::parse(
        "attack=glitch;glitch-off-ns=105,109;glitch-width-ns=2;"
        "glitch-depth=0.04,0.5;seeds=1");
    CampaignConfig one, four;
    one.jobs = 1;
    four.jobs = 4;
    const CampaignResult a = Campaign(grid, one).run();
    const CampaignResult b = Campaign(grid, four).run();
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.toCsv(), b.toCsv());

    const CampaignSummary s = a.summary();
    EXPECT_EQ(s.glitch_trials, 4u);
    EXPECT_EQ(s.errors, 0u);
}

TEST(TrialRunner, GlitchTrialRecordsOutcome)
{
    // Sub-margin depth: deterministically zero faults, no bypass.
    SweepGrid shallow = SweepGrid::parse(
        "attack=glitch;glitch-off-ns=109;glitch-width-ns=2;"
        "glitch-depth=0.04");
    const TrialRecord rec = runTrial(shallow.at(0), 0x5eed);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_EQ(rec.glitch_faults, 0u);
    EXPECT_TRUE(rec.glitch_effect.empty());
    EXPECT_FALSE(rec.glitch_bypassed);
    EXPECT_DOUBLE_EQ(rec.accuracy, 0.0);
    EXPECT_DOUBLE_EQ(rec.bit_error_rate, 1.0);
}

TEST(TrialRunner, DegenerateGlitchSpecMatchesNoGlitchSpec)
{
    // A zero-width (or zero-depth) pulse is the documented no-op: the
    // trial outcome must match the all-zero glitch point bit for bit.
    SweepGrid none = SweepGrid::parse("attack=glitch");
    SweepGrid zero_w = SweepGrid::parse(
        "attack=glitch;glitch-width-ns=0;glitch-depth=0.5");
    SweepGrid zero_d = SweepGrid::parse(
        "attack=glitch;glitch-off-ns=50;glitch-width-ns=2;"
        "glitch-depth=0");
    const TrialRecord a = runTrial(none.at(0), 0x5eed);
    const TrialRecord b = runTrial(zero_w.at(0), 0x5eed);
    const TrialRecord c = runTrial(zero_d.at(0), 0x5eed);
    for (const TrialRecord *r : {&b, &c}) {
        EXPECT_EQ(r->status, a.status);
        EXPECT_EQ(r->chip_seed, a.chip_seed);
        EXPECT_EQ(r->glitch_faults, a.glitch_faults);
        EXPECT_EQ(r->glitch_effect, a.glitch_effect);
        EXPECT_EQ(r->glitch_bypassed, a.glitch_bypassed);
        EXPECT_EQ(r->detail, a.detail);
        EXPECT_DOUBLE_EQ(r->accuracy, a.accuracy);
        EXPECT_DOUBLE_EQ(r->bit_error_rate, a.bit_error_rate);
    }
    EXPECT_EQ(a.glitch_faults, 0u);
}

TEST(TrialRunner, SameChipSeedIndexMeansSameSilicon)
{
    // Two trials at different grid points but the same seed index must
    // land on the same derived chip seed (same simulated die).
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;attack=coldboot;temp=-110,-80;off-ms=5;seeds=2");
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(deriveChipSeed(5, grid.at(0).seed_index),
              deriveChipSeed(5, grid.at(2).seed_index));
    EXPECT_NE(deriveChipSeed(5, grid.at(0).seed_index),
              deriveChipSeed(5, grid.at(1).seed_index));
}

} // namespace

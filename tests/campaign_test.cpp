/**
 * @file
 * Campaign engine tests: grid enumeration and parsing, scheduling
 * determinism (same seed => byte-identical JSON at any job count),
 * failed-trial isolation, abort semantics, and a few real end-to-end
 * trials through the public runner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "campaign/campaign.hh"
#include "campaign/campaign_result.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace voltboot;

namespace
{

/** A cheap deterministic stand-in for runTrial: metrics are a pure
 * function of (campaign seed, trial index), like the real thing. */
TrialRecord
fakeTrial(const TrialSpec &spec, uint64_t seed)
{
    TrialRecord rec;
    rec.spec = spec;
    rec.chip_seed = deriveChipSeed(seed, spec.seed_index);
    Rng rng(deriveTrialSeed(seed, spec.index));
    rec.status = TrialStatus::Ok;
    rec.booted = true;
    rec.dump_bytes = 32768;
    rec.bit_error_rate = rng.uniform() * 0.5;
    rec.accuracy = 1.0 - rec.bit_error_rate;
    return rec;
}

TEST(SweepGrid, SizeIsAxisProduct)
{
    SweepGrid grid;
    EXPECT_EQ(grid.size(), 1u);

    grid.boards = {"pi3", "pi4"};
    grid.temps_c = {-80.0, -40.0, 25.0};
    grid.offs_ms = {5.0, 500.0};
    grid.seed_count = 7;
    EXPECT_EQ(grid.size(), 2u * 3u * 2u * 7u);
}

TEST(SweepGrid, EnumerationCoversEveryPointExactlyOnce)
{
    SweepGrid grid;
    grid.boards = {"pi3", "pi4"};
    grid.attacks = {AttackKind::VoltBoot, AttackKind::ColdBoot};
    grid.temps_c = {-110.0, 25.0};
    grid.seed_count = 3;

    std::set<std::tuple<std::string, int, double, uint64_t>> seen;
    uint64_t count = 0;
    for (const TrialSpec &spec : grid) {
        EXPECT_EQ(spec.index, count);
        seen.insert({spec.board, static_cast<int>(spec.attack),
                     spec.temp_c, spec.seed_index});
        ++count;
    }
    EXPECT_EQ(count, grid.size());
    EXPECT_EQ(seen.size(), grid.size()) << "duplicate grid points";
}

TEST(SweepGrid, IndexDecodeOrdering)
{
    SweepGrid grid;
    grid.boards = {"pi3", "pi4"};
    grid.temps_c = {-80.0, 25.0};
    grid.seed_count = 2;

    // Seed index varies fastest, board slowest.
    EXPECT_EQ(grid.at(0).seed_index, 0u);
    EXPECT_EQ(grid.at(1).seed_index, 1u);
    EXPECT_EQ(grid.at(0).board, "pi3");
    EXPECT_EQ(grid.at(grid.size() - 1).board, "pi4");
    EXPECT_EQ(grid.at(0).temp_c, -80.0);
    EXPECT_EQ(grid.at(2).temp_c, 25.0);
}

TEST(SweepGrid, ParseRoundTripsThroughDescribe)
{
    const SweepGrid grid = SweepGrid::parse(
        "board=pi4,imx53;target=dcache,iram;attack=voltboot;"
        "temp=-80,25;off-ms=0.5,500;current=3;impedance-mohm=50;"
        "key=0;seeds=4");
    EXPECT_EQ(grid.size(), 2u * 2u * 2u * 2u * 4u);
    const SweepGrid reparsed = SweepGrid::parse(grid.describe());
    EXPECT_EQ(reparsed.describe(), grid.describe());
    EXPECT_EQ(reparsed.size(), grid.size());
}

TEST(SweepGrid, ParseAcceptsNewlinesAndComments)
{
    const SweepGrid grid = SweepGrid::parse(
        "# retention surface\n"
        "board=pi4\n"
        "attack=coldboot   # control experiment\n"
        "temp=-110,-80\n"
        "seeds=2\n");
    EXPECT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid.attacks[0], AttackKind::ColdBoot);
}

TEST(SweepGrid, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(SweepGrid::parse("bogus-key=1"), FatalError);
    EXPECT_THROW(SweepGrid::parse("temp=12x"), FatalError);
    EXPECT_THROW(SweepGrid::parse("temp="), FatalError);
    EXPECT_THROW(SweepGrid::parse("seeds=0"), FatalError);
    EXPECT_THROW(SweepGrid::parse("target=l9cache"), FatalError);
    EXPECT_THROW(SweepGrid::parse("attack=warmboot"), FatalError);
    EXPECT_THROW(SweepGrid::parse("temp"), FatalError);
    EXPECT_THROW(SweepGrid::parse("key=2"), FatalError);
}

TEST(Campaign, JsonIsByteIdenticalAcrossJobCounts)
{
    SweepGrid grid;
    grid.boards = {"pi3", "pi4"};
    grid.temps_c = {-110.0, -40.0, 25.0};
    grid.offs_ms = {5.0, 50.0};
    grid.seed_count = 8; // 2*3*2*8 = 96 trials

    auto runWith = [&](unsigned jobs) {
        CampaignConfig cfg;
        cfg.jobs = jobs;
        cfg.seed = 1234;
        cfg.runner = fakeTrial;
        return Campaign(grid, cfg).run().toJson();
    };
    const std::string serial = runWith(1);
    EXPECT_EQ(serial, runWith(4));
    EXPECT_EQ(serial, runWith(8));
}

TEST(Campaign, SeedChangesResults)
{
    SweepGrid grid;
    grid.seed_count = 4;
    CampaignConfig a, b;
    a.runner = b.runner = fakeTrial;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(Campaign(grid, a).run().toJson(),
              Campaign(grid, b).run().toJson());
}

TEST(Campaign, ThrowingTrialIsIsolated)
{
    SweepGrid grid;
    grid.seed_count = 32;
    CampaignConfig cfg;
    cfg.jobs = 4;
    cfg.runner = [](const TrialSpec &spec, uint64_t seed) {
        if (spec.index == 7)
            fatal("injected failure");
        if (spec.index == 11)
            throw 42; // non-std exception
        return fakeTrial(spec, seed);
    };
    const CampaignResult result = Campaign(grid, cfg).run();
    ASSERT_EQ(result.records.size(), 32u);
    EXPECT_EQ(result.records[7].status, TrialStatus::Error);
    EXPECT_EQ(result.records[7].detail, "injected failure");
    EXPECT_EQ(result.records[11].status, TrialStatus::Error);
    EXPECT_EQ(result.records[11].detail, "unknown exception");
    const CampaignSummary s = result.summary();
    EXPECT_EQ(s.errors, 2u);
    EXPECT_EQ(s.ok, 30u);
}

TEST(Campaign, UnsupportedComboRecordedAsErrorAndSweepCompletes)
{
    // iRAM only exists on imx53; the pi4 x iram cross combos must be
    // captured as errors without sinking the rest of the campaign.
    SweepGrid grid;
    grid.boards = {"pi4"};
    grid.targets = {TargetRam::Iram};
    CampaignConfig cfg;
    cfg.jobs = 1;
    const CampaignResult result = Campaign(grid, cfg).run();
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].status, TrialStatus::Error);
    EXPECT_NE(result.records[0].detail.find("iRAM"), std::string::npos);
}

TEST(Campaign, AbortSkipsRemainingTrials)
{
    SweepGrid grid;
    grid.seed_count = 64;
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.chunk = 1;
    std::atomic<Campaign *> self{nullptr};
    cfg.runner = [&](const TrialSpec &spec, uint64_t seed) {
        if (spec.index == 9)
            self.load()->requestAbort();
        return fakeTrial(spec, seed);
    };
    Campaign campaign(grid, cfg);
    self.store(&campaign);
    const CampaignResult result = campaign.run();
    const CampaignSummary s = result.summary();
    EXPECT_EQ(s.ok, 10u); // indices 0..9 ran, the rest were skipped
    EXPECT_EQ(s.skipped, 54u);
    EXPECT_EQ(result.records[10].status, TrialStatus::Skipped);
    EXPECT_EQ(result.records[63].status, TrialStatus::Skipped);
}

TEST(Campaign, ProgressCallbackReportsMonotonically)
{
    SweepGrid grid;
    grid.seed_count = 40;
    CampaignConfig cfg;
    cfg.jobs = 4;
    cfg.runner = fakeTrial;
    cfg.progress_every = 10;
    std::atomic<uint64_t> last{0};
    std::atomic<bool> saw_final{false};
    cfg.progress = [&](const CampaignProgress &p) {
        EXPECT_LE(p.done, p.total);
        EXPECT_GE(p.done, last.load());
        last.store(p.done);
        if (p.done == p.total)
            saw_final.store(true);
    };
    Campaign(grid, cfg).run();
    EXPECT_TRUE(saw_final.load());
}

TEST(Campaign, CsvHasHeaderAndOneRowPerTrial)
{
    SweepGrid grid;
    grid.seed_count = 5;
    CampaignConfig cfg;
    cfg.runner = fakeTrial;
    const std::string csv = Campaign(grid, cfg).run().toCsv();
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 6u); // header + 5 records
    EXPECT_EQ(csv.find("index,board,target"), 0u);
}

TEST(Campaign, TimingSectionIsOptIn)
{
    SweepGrid grid;
    CampaignConfig cfg;
    cfg.runner = fakeTrial;
    const CampaignResult result = Campaign(grid, cfg).run();
    EXPECT_EQ(result.toJson().find("\"timing\""), std::string::npos);
    EXPECT_NE(result.toJson(true).find("\"timing\""),
              std::string::npos);
}

// --- Real-trial coverage (each trial builds a full Soc; keep small) ---

TEST(TrialRunner, VoltBootDCacheIsExact)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=voltboot;temp=25;off-ms=5");
    const TrialRecord rec = runTrial(grid.at(0), 99);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_TRUE(rec.probe_attached);
    EXPECT_TRUE(rec.booted);
    EXPECT_EQ(rec.dump_bytes, 32768u);
    EXPECT_DOUBLE_EQ(rec.accuracy, 1.0); // the paper's 100% claim
}

TEST(TrialRunner, ColdBootAtRoomTemperatureRetainsNothing)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=coldboot;temp=25;off-ms=500");
    const TrialRecord rec = runTrial(grid.at(0), 99);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_NEAR(rec.accuracy, 0.5, 0.05); // chance level
}

TEST(TrialRunner, PlantedKeyIsRecoveredUnderVoltBoot)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=voltboot;temp=25;off-ms=5;"
        "key=1");
    const TrialRecord rec = runTrial(grid.at(0), 7);
    EXPECT_EQ(rec.status, TrialStatus::Ok);
    EXPECT_TRUE(rec.key_planted);
    EXPECT_TRUE(rec.key_found);
    EXPECT_TRUE(rec.key_exact);
}

TEST(TrialRunner, SameChipSeedIndexMeansSameSilicon)
{
    // Two trials at different grid points but the same seed index must
    // land on the same derived chip seed (same simulated die).
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;attack=coldboot;temp=-110,-80;off-ms=5;seeds=2");
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(deriveChipSeed(5, grid.at(0).seed_index),
              deriveChipSeed(5, grid.at(2).seed_index));
    EXPECT_NE(deriveChipSeed(5, grid.at(0).seed_index),
              deriveChipSeed(5, grid.at(1).seed_index));
}

} // namespace

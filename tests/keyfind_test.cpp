/**
 * @file
 * Tests for the unified key-recovery engine: golden parity of the
 * batched scan against KeyFinder and of the correction stage against
 * RobustKeyScanner, byte-identical results across job counts,
 * prior-guided search cost, multi-dump fusion, the residual filter's
 * conservativeness, telemetry counters, and the campaign KeyRecovery
 * mode end to end (including the JSON round trip through the report
 * reader).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <set>
#include <span>
#include <sstream>
#include <utility>

#include "campaign/campaign.hh"
#include "campaign/campaign_result.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"
#include "crypto/aes.hh"
#include "crypto/key_corrector.hh"
#include "crypto/key_finder.hh"
#include "keyfind/engine.hh"
#include "keyfind/prior.hh"
#include "keyfind/schedule_scan.hh"
#include "report/campaign_json.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"
#include "telemetry/counters.hh"

using namespace voltboot;

namespace
{

std::vector<uint8_t>
testKey(size_t bytes, uint64_t seed = 42)
{
    Rng rng(seed);
    std::vector<uint8_t> key(bytes);
    for (auto &b : key)
        b = static_cast<uint8_t>(rng.next());
    return key;
}

std::vector<uint8_t>
corrupt(std::vector<uint8_t> data, double ber, uint64_t seed)
{
    Rng rng(seed);
    for (auto &b : data)
        for (int bit = 0; bit < 8; ++bit)
            if (rng.uniform() < ber)
                b ^= 1u << bit;
    return data;
}

/** A dump image with schedules planted at fixed offsets over random
 * filler, then corrupted at @p ber. */
MemoryImage
plantedImage(size_t bytes, const std::vector<uint8_t> &key, double ber,
             uint64_t seed, std::vector<size_t> offsets = {0x400, 0x1800})
{
    Rng rng(seed);
    std::vector<uint8_t> img(bytes);
    for (auto &b : img)
        b = static_cast<uint8_t>(rng.next());
    const auto sched = Aes::expandKey(key);
    for (size_t off : offsets) {
        if (off + sched.size() > img.size())
            fatal("plantedImage: offset ", off, " overruns the image");
        std::copy(sched.begin(), sched.end(), img.begin() + off);
    }
    return MemoryImage(corrupt(std::move(img), ber, seed + 1));
}

void
expectSameCandidates(const std::vector<KeyCandidate> &a,
                     const std::vector<KeyCandidate> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].offset, b[i].offset) << "hit " << i;
        EXPECT_EQ(a[i].key_bytes, b[i].key_bytes) << "hit " << i;
        EXPECT_EQ(a[i].key, b[i].key) << "hit " << i;
        EXPECT_EQ(a[i].bit_errors, b[i].bit_errors) << "hit " << i;
        EXPECT_EQ(a[i].error_fraction, b[i].error_fraction)
            << "hit " << i;
    }
}

class ScanParityBerSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ScanParityBerSweep, BatchedScanMatchesKeyFinder)
{
    const double ber = GetParam();
    const auto key = testKey(16, 3);
    const MemoryImage image = plantedImage(16384, key, ber, 77);

    KeyFinderConfig cfg;
    cfg.aes256 = true; // exercise both variants
    const auto reference = KeyFinder(cfg).scan(image);
    keyfind::ScanStats stats;
    const auto batched = keyfind::scheduleScan(image, cfg, &stats);
    expectSameCandidates(batched, reference);
    EXPECT_EQ(stats.offsets, stats.early_rejects + stats.scored);
    if (ber == 0.0) {
        // The planted schedules must actually be found for the parity
        // check to mean anything. (At nonzero BER a corrupted *key*
        // byte avalanches the derived schedule, so the exact scan may
        // legitimately reject the plant — correction territory.)
        EXPECT_GE(batched.size(), 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(BerGrid, ScanParityBerSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.5));

TEST(ScheduleScan, EarlyRejectFiltersAlmostEverything)
{
    // Pure random data: nothing to find, nearly nothing to score.
    Rng rng(9);
    std::vector<uint8_t> img(1 << 16);
    for (auto &b : img)
        b = static_cast<uint8_t>(rng.next());
    keyfind::ScanStats stats;
    const auto hits =
        keyfind::scheduleScan(MemoryImage(std::move(img)),
                              KeyFinderConfig{}, &stats);
    EXPECT_TRUE(hits.empty());
    ASSERT_GT(stats.offsets, 0u);
    // On random data the residual sum concentrates far above the
    // acceptance budget; well under 1% of offsets may survive.
    EXPECT_LT(static_cast<double>(stats.scored),
              0.01 * static_cast<double>(stats.offsets));
}

TEST(ScheduleScan, ResidualFilterIsConservative)
{
    // Property: any window the reference scorer accepts must survive
    // the residual filter — the summed relation residual never exceeds
    // the derived-bit error count. Stress it right at the acceptance
    // boundary with heavily corrupted planted schedules.
    const auto key = testKey(16, 31);
    for (uint64_t trial = 0; trial < 40; ++trial) {
        const auto noisy =
            corrupt(Aes::expandKey(key), 0.09, 500 + trial);
        const size_t errors = KeyFinder::scheduleBitErrors(noisy, 16);
        unsigned residual = 0;
        for (unsigned i : scheduleResidualWords(16)) {
            uint32_t w[3];
            std::memcpy(&w[0], noisy.data() + 4 * i, 4);
            std::memcpy(&w[1], noisy.data() + 4 * (i - 1), 4);
            std::memcpy(&w[2], noisy.data() + 4 * (i - 4), 4);
            residual +=
                static_cast<unsigned>(std::popcount(w[0] ^ w[1] ^ w[2]));
        }
        EXPECT_LE(residual, errors) << "trial " << trial;
    }
}

TEST(ScheduleScan, AcceptedErrorBudgetMatchesReferenceComparison)
{
    // The reference accepts iff errors/derived <= max_error_fraction
    // under exact double division; the budget must be the largest such
    // integer, across awkward fractions.
    for (double frac : {0.0, 0.05, 0.1, 1.0 / 3.0, 0.375}) {
        for (size_t bits : {1280u, 1408u, 1664u}) {
            const size_t budget =
                keyfind::acceptedErrorBudget(frac, bits);
            EXPECT_LE(static_cast<double>(budget) /
                          static_cast<double>(bits),
                      frac);
            EXPECT_GT(static_cast<double>(budget + 1) /
                          static_cast<double>(bits),
                      frac);
        }
    }
}

TEST(KeyRecoveryEngine, CorrectionHitsMatchRobustScanner)
{
    // With priors off the engine's correction stage must reproduce
    // RobustKeyScanner::scan exactly.
    const auto key = testKey(16, 5);
    const MemoryImage image = plantedImage(8192, key, 0.01, 111);

    const RobustKeyScanner scanner{KeyCorrector{}};
    const auto reference = scanner.scan(image, 16);

    keyfind::KeyRecoveryConfig cfg;
    cfg.use_priors = false;
    const auto report = keyfind::KeyRecoveryEngine(cfg).recover(image);

    ASSERT_EQ(report.corrected_hits.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(report.corrected_hits[i].offset, reference[i].offset);
        EXPECT_EQ(report.corrected_hits[i].corrected.key,
                  reference[i].corrected.key);
        EXPECT_EQ(report.corrected_hits[i].corrected.residual_bit_errors,
                  reference[i].corrected.residual_bit_errors);
        EXPECT_EQ(report.corrected_hits[i].corrected.key_bits_flipped,
                  reference[i].corrected.key_bits_flipped);
    }
    EXPECT_GE(report.correction.attempted, report.correction.accepted);
}

TEST(KeyRecoveryEngine, ByteIdenticalAcrossJobCounts)
{
    const auto key = testKey(16, 15);
    const MemoryImage image = plantedImage(32768, key, 0.02, 222);

    auto runWith = [&](unsigned jobs) {
        keyfind::KeyRecoveryConfig cfg;
        cfg.jobs = jobs;
        cfg.chunk_offsets = 512; // force many tasks
        return keyfind::KeyRecoveryEngine(cfg).recover(image);
    };
    const auto serial = runWith(1);
    for (unsigned jobs : {2u, 4u}) {
        const auto parallel = runWith(jobs);
        expectSameCandidates(parallel.scan_hits, serial.scan_hits);
        ASSERT_EQ(parallel.corrected_hits.size(),
                  serial.corrected_hits.size());
        for (size_t i = 0; i < serial.corrected_hits.size(); ++i) {
            EXPECT_EQ(parallel.corrected_hits[i].offset,
                      serial.corrected_hits[i].offset);
            EXPECT_EQ(parallel.corrected_hits[i].corrected.key,
                      serial.corrected_hits[i].corrected.key);
        }
        EXPECT_EQ(parallel.scan.offsets, serial.scan.offsets);
        EXPECT_EQ(parallel.scan.early_rejects,
                  serial.scan.early_rejects);
        EXPECT_EQ(parallel.correction.iterations,
                  serial.correction.iterations);
    }
}

TEST(KeyRecoveryEngine, BestKeyPrefersExactScan)
{
    const auto key = testKey(16, 25);
    const MemoryImage image = plantedImage(4096, key, 0.0, 333, {0x400});
    const auto report = keyfind::KeyRecoveryEngine().recover(image);
    ASSERT_FALSE(report.scan_hits.empty());
    const auto best = report.bestKey();
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(*best, key);
}

TEST(KeyfindPrior, PriorsCutSearchCost)
{
    // Flip key bits the prior marks as likely-flipped: the guided
    // search must recover the same key while expanding fewer candidate
    // schedules than the blind steepest-descent sweep.
    const auto key = testKey(16, 35);
    auto sched = Aes::expandKey(key);
    const size_t flipped[] = {1 * 8 + 2, 12 * 8 + 0};
    for (size_t bit : flipped)
        sched[bit / 8] ^= 1u << (bit % 8);

    std::vector<float> priors(128, 0.001f);
    for (size_t bit : flipped)
        priors[bit] = 0.4f;

    const KeyCorrector corrector;
    const auto blind = corrector.attempt(sched, 16);
    const auto guided = corrector.attempt(sched, 16, priors);
    ASSERT_TRUE(blind.key.has_value());
    ASSERT_TRUE(guided.key.has_value());
    EXPECT_EQ(blind.key->key, key);
    EXPECT_EQ(guided.key->key, key);
    EXPECT_LT(guided.distance_evals, blind.distance_evals);
}

TEST(KeyfindPrior, DecayPriorsComeFromTheRetentionModel)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    const RetentionModel &model = soc.l1dData(0).model();
    const size_t bits = 4096;

    const auto cold = keyfind::decayFlipPriors(
        model, bits, Seconds::milliseconds(5), Temperature::celsius(-80));
    const auto warm = keyfind::decayFlipPriors(
        model, bits, Seconds(30), Temperature::celsius(25));
    ASSERT_EQ(cold.size(), bits);
    ASSERT_EQ(warm.size(), bits);
    double cold_sum = 0, warm_sum = 0;
    for (size_t i = 0; i < bits; ++i) {
        EXPECT_GE(cold[i], 1e-4f);
        EXPECT_LE(cold[i], 0.5f);
        cold_sum += cold[i];
        warm_sum += warm[i];
    }
    // Longer, warmer off intervals must look strictly riskier.
    EXPECT_LT(cold_sum, warm_sum);

    // Unpowered for no time at all: every bit at the floor.
    const auto none = keyfind::decayFlipPriors(
        model, 64, Seconds(0.0), Temperature::celsius(25));
    for (float p : none)
        EXPECT_FLOAT_EQ(p, 1e-4f);
}

TEST(KeyfindPrior, FusionVotesOutPerDumpNoise)
{
    // Three dumps of the same data, each with disjoint-ish random
    // noise: the majority vote must be cleaner than any single dump.
    const auto key = testKey(16, 45);
    const MemoryImage truth = plantedImage(2048, key, 0.0, 444, {0x400});
    std::vector<MemoryImage> dumps;
    for (uint64_t d = 0; d < 3; ++d)
        dumps.push_back(MemoryImage(
            corrupt(truth.bytes(), 0.03, 600 + d)));

    const auto fused = keyfind::fuseDumps(dumps);
    EXPECT_EQ(fused.dumps, 3u);
    EXPECT_GT(fused.disagreeing_bits, 0u);
    const double fused_ber =
        MemoryImage::fractionalHamming(fused.image, truth);
    for (const MemoryImage &d : dumps)
        EXPECT_LT(fused_ber, MemoryImage::fractionalHamming(d, truth));

    // Disagreeing bits carry raised flip likelihood.
    size_t raised = 0;
    for (float p : fused.flip_likelihood)
        raised += p >= 0.45f;
    EXPECT_EQ(raised, fused.disagreeing_bits);
}

TEST(KeyfindPrior, FusionRecoversWhatSingleDumpsCannot)
{
    // At 6% BER a single dump usually defeats the corrector; the
    // 5-dump majority vote pushes the error rate back into range
    // (residual flip probability ~10 p^3 ~ 0.2%).
    const auto key = testKey(16, 55);
    const MemoryImage truth = plantedImage(2048, key, 0.0, 777, {0x400});
    std::vector<MemoryImage> dumps;
    for (uint64_t d = 0; d < 5; ++d)
        dumps.push_back(MemoryImage(
            corrupt(truth.bytes(), 0.06, 900 + d)));

    const keyfind::KeyRecoveryEngine engine;
    const auto fused_report =
        engine.recover(std::span<const MemoryImage>(dumps));
    EXPECT_EQ(fused_report.dumps_fused, 5u);
    const auto best = fused_report.bestKey();
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(*best, key);
}

TEST(KeyfindTelemetry, CountersTallyScanAndCorrectionWork)
{
    telemetry::resetCounters();
    const auto key = testKey(16, 65);
    const MemoryImage image = plantedImage(8192, key, 0.01, 555);
    {
        telemetry::WorkerScope scope;
        keyfind::KeyRecoveryEngine().recover(image);
    }
    const telemetry::CounterTotals t = telemetry::totals();
    EXPECT_GT(t.get(telemetry::Counter::KeyfindOffsets), 0u);
    EXPECT_GT(t.get(telemetry::Counter::KeyfindEarlyRejects), 0u);
    EXPECT_GT(t.get(telemetry::Counter::KeyfindCorrections), 0u);
    telemetry::resetCounters();
}

// --- campaign KeyRecovery mode ---

TEST(KeyRecoverySweep, AxesRoundTripThroughDescribeAndParse)
{
    const SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=key-recovery;temp=-40;"
        "off-ms=50;dumps=1,3;prior=0,1;seeds=2");
    EXPECT_EQ(grid.size(), 8u);
    const SweepGrid again = SweepGrid::parse(grid.describe());
    EXPECT_EQ(again.describe(), grid.describe());

    // dump_count varies slower than prior, faster than cpa-window.
    std::set<std::pair<uint64_t, bool>> combos;
    for (uint64_t i = 0; i < grid.size(); ++i) {
        const TrialSpec spec = grid.at(i);
        EXPECT_EQ(spec.attack, AttackKind::KeyRecovery);
        combos.insert({spec.dump_count, spec.use_priors});
    }
    EXPECT_EQ(combos.size(), 4u);

    EXPECT_THROW(SweepGrid::parse("dumps=0"), FatalError);
    EXPECT_THROW(SweepGrid::parse("prior=2"), FatalError);
}

TEST(KeyRecoverySweep, EndToEndTrialProducesMetrics)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=dcache;attack=key-recovery;temp=-40;"
        "off-ms=50;dumps=2;prior=1;seeds=1");
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.seed = 99;
    const CampaignResult result = Campaign(grid, cfg).run();
    ASSERT_EQ(result.records.size(), 1u);
    const TrialRecord &rec = result.records[0];
    ASSERT_EQ(rec.status, TrialStatus::Ok) << rec.detail;
    EXPECT_TRUE(rec.booted);
    EXPECT_TRUE(rec.key_planted);
    EXPECT_GT(rec.dump_bytes, 0u);
    EXPECT_GT(rec.accuracy, 0.5);
    // Two power cycles of a bistable array must disagree somewhere.
    EXPECT_GT(rec.kr_disagreeing_bits, 0u);

    const CampaignSummary s = result.summary();
    EXPECT_EQ(s.keyrecovery_trials, 1u);

    // The record round-trips through JSON and the report reader.
    const report::SweepDoc doc =
        report::parseSweepJson(result.toJson(), "keyfind-test");
    ASSERT_EQ(doc.records.size(), 1u);
    EXPECT_EQ(doc.records[0].attack, "key-recovery");
    EXPECT_EQ(doc.records[0].dump_count, 2u);
    EXPECT_TRUE(doc.records[0].use_priors);
    EXPECT_EQ(doc.records[0].kr_disagreeing_bits,
              rec.kr_disagreeing_bits);

    // And through CSV: the new columns are present and aligned.
    const std::string csv = result.toCsv();
    std::istringstream lines(csv);
    std::string header, row;
    std::getline(lines, header);
    std::getline(lines, row);
    const auto cols = splitCsvRow(header);
    const auto vals = splitCsvRow(row);
    ASSERT_EQ(cols.size(), vals.size());
    auto field = [&](const std::string &name) {
        for (size_t i = 0; i < cols.size(); ++i)
            if (cols[i] == name)
                return vals[i];
        ADD_FAILURE() << "missing CSV column " << name;
        return std::string();
    };
    EXPECT_EQ(field("dump_count"), "2");
    EXPECT_EQ(field("use_priors"), "1");
    EXPECT_EQ(field("kr_disagreeing_bits"),
              std::to_string(rec.kr_disagreeing_bits));
}

TEST(KeyRecoverySweep, RejectsNonDcacheTargets)
{
    SweepGrid grid = SweepGrid::parse(
        "board=pi4;target=icache;attack=key-recovery;seeds=1");
    CampaignConfig cfg;
    cfg.jobs = 1;
    const CampaignResult result = Campaign(grid, cfg).run();
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].status, TrialStatus::Error);
    EXPECT_NE(result.records[0].detail.find("dcache"),
              std::string::npos);
}

} // namespace

/**
 * @file
 * Tests for the power-delivery model: transient solver, domains, PMIC
 * sequencing, probes and test pads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/board.hh"
#include "power/power_domain.hh"
#include "power/transient.hh"
#include "sim/logging.hh"

namespace voltboot
{
namespace
{

VoltageProbe
benchSupply(double volts = 0.8, double amps = 3.0, double ohms = 0.05)
{
    return VoltageProbe{Volt(volts), Amp(amps), Ohm(ohms)};
}

TEST(TransientSolver, NoSurgeNoDroop)
{
    const ProbeTransient t = TransientSolver::solve(
        benchSupply(), Amp(0.0), Amp::milliamps(8),
        Farad::microfarads(100), Seconds::microseconds(5));
    EXPECT_NEAR(t.v_min.volts(), 0.8, 1e-9);
    EXPECT_FALSE(t.current_limited);
}

TEST(TransientSolver, OhmicDroopWithinLimit)
{
    // 0.5 A through 0.05 ohm = 25 mV worst case, minus RC smoothing.
    const ProbeTransient t = TransientSolver::solve(
        benchSupply(), Amp(0.5), Amp::milliamps(8),
        Farad::microfarads(100), Seconds::microseconds(50));
    EXPECT_FALSE(t.current_limited);
    EXPECT_LT(t.v_min.volts(), 0.8);
    EXPECT_GT(t.v_min.volts(), 0.8 - 0.025 - 1e-9);
}

TEST(TransientSolver, DecapSmoothsShortSurges)
{
    // With tau = R*C = 5 us and a 1 us surge, the droop only develops
    // ~18% of its ohmic worst case.
    const ProbeTransient fast = TransientSolver::solve(
        benchSupply(), Amp(2.0), Amp::milliamps(8),
        Farad::microfarads(100), Seconds::microseconds(1));
    const ProbeTransient slow = TransientSolver::solve(
        benchSupply(), Amp(2.0), Amp::milliamps(8),
        Farad::microfarads(100), Seconds::microseconds(50));
    EXPECT_GT(fast.v_min, slow.v_min);
}

TEST(TransientSolver, BiggerDecapMeansLessDroop)
{
    const ProbeTransient small = TransientSolver::solve(
        benchSupply(), Amp(2.0), Amp::milliamps(8),
        Farad::microfarads(10), Seconds::microseconds(5));
    const ProbeTransient big = TransientSolver::solve(
        benchSupply(), Amp(2.0), Amp::milliamps(8),
        Farad::microfarads(470), Seconds::microseconds(5));
    EXPECT_GE(big.v_min, small.v_min);
}

TEST(TransientSolver, CurrentLimitedSupplyCollapses)
{
    // A 100 mA wall-wart cannot source a 600 mA surge: the rail caves.
    const ProbeTransient t = TransientSolver::solve(
        benchSupply(0.8, 0.1, 0.5), Amp(0.6), Amp::milliamps(8),
        Farad::microfarads(10), Seconds::microseconds(100));
    EXPECT_TRUE(t.current_limited);
    EXPECT_LT(t.v_min.volts(), 0.25); // below typical DRV: data loss
}

TEST(TransientSolver, StrongBenchSupplyHoldsTheRail)
{
    // The paper's ">3 A current driving capability" requirement.
    const ProbeTransient t = TransientSolver::solve(
        benchSupply(0.8, 3.0, 0.05), Amp(0.6), Amp::milliamps(8),
        Farad::microfarads(220), Seconds::microseconds(5));
    EXPECT_FALSE(t.current_limited);
    EXPECT_GT(t.v_min.volts(), 0.55); // above every DRV: zero loss
}

TEST(TransientSolver, SettledVoltageReflectsRetentionCurrent)
{
    const ProbeTransient t = TransientSolver::solve(
        benchSupply(0.8, 3.0, 0.05), Amp(0.5), Amp::milliamps(8),
        Farad::microfarads(100), Seconds::microseconds(5));
    EXPECT_NEAR(t.v_settled.volts(), 0.8 - 0.008 * 0.05, 1e-9);
}

TEST(TransientSolver, DischargeTimeScalesWithCapacitance)
{
    const Seconds t1 = TransientSolver::dischargeTime(
        Volt(0.8), Volt(0.2), Farad::microfarads(100), Amp(0.05));
    const Seconds t2 = TransientSolver::dischargeTime(
        Volt(0.8), Volt(0.2), Farad::microfarads(200), Amp(0.05));
    EXPECT_NEAR(t2.seconds(), 2.0 * t1.seconds(), 1e-12);
    EXPECT_NEAR(t1.seconds(), 0.6 * 100e-6 / 0.05, 1e-12);
}

TEST(TransientSolver, RejectsNonsense)
{
    EXPECT_THROW(TransientSolver::solve(benchSupply(), Amp(1.0), Amp(0.1),
                                        Farad(0.0), Seconds(1e-6)),
                 FatalError);
    EXPECT_THROW(TransientSolver::dischargeTime(Volt(1.0), Volt(0.1),
                                                Farad(1e-6), Amp(0.0)),
                 FatalError);
}

// --- PowerDomain ---

TEST(PowerDomain, PowerCycleWithoutProbeLosesArrayState)
{
    PowerDomain dom("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    SramArray ram("ram", 2048, 9, 1);
    dom.attachLoad(&ram);

    dom.powerUp(Seconds(0.0), Temperature::celsius(25));
    ram.fill(0x5A);
    dom.powerDown(Seconds(1.0));
    EXPECT_EQ(ram.powerState(), PowerState::Off);
    dom.powerUp(Seconds(1.5), Temperature::celsius(25));

    size_t matches = 0;
    for (size_t i = 0; i < ram.sizeBytes(); ++i)
        matches += ram.readByte(i) == 0x5A;
    EXPECT_LT(static_cast<double>(matches) / ram.sizeBytes(), 0.05);
}

TEST(PowerDomain, ProbedPowerCycleRetainsEverything)
{
    PowerDomain dom("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    SramArray ram("ram", 2048, 9, 2);
    dom.attachLoad(&ram);

    dom.powerUp(Seconds(0.0), Temperature::celsius(25));
    ram.fill(0x5A);
    dom.attachProbe(VoltageProbe{Volt(0.8), Amp(3.0), Ohm(0.05)});
    dom.powerDown(Seconds(1.0));
    EXPECT_EQ(ram.powerState(), PowerState::Retained);
    // Hours later, the data is still there.
    dom.powerUp(Seconds(3600.0), Temperature::celsius(25));
    for (size_t i = 0; i < ram.sizeBytes(); ++i)
        ASSERT_EQ(ram.readByte(i), 0x5A);
}

TEST(PowerDomain, WeakProbeDroopsAndLosesBits)
{
    DomainLoadProfile profile;
    profile.surge_current = Amp(0.6);
    profile.decap = Farad::microfarads(10);
    profile.surge_duration = Seconds::microseconds(100);
    PowerDomain dom("VDD_CORE", Volt(0.8), RegulatorKind::Buck, profile);
    SramArray ram("ram", 8192, 9, 3);
    dom.attachLoad(&ram);

    dom.powerUp(Seconds(0.0), Temperature::celsius(25));
    ram.fill(0x5A);
    // 100 mA-limited probe: collapses under the 600 mA surge.
    dom.attachProbe(VoltageProbe{Volt(0.8), Amp(0.1), Ohm(0.5)});
    dom.powerDown(Seconds(1.0));
    ASSERT_TRUE(dom.lastTransient().has_value());
    EXPECT_TRUE(dom.lastTransient()->current_limited);
    dom.powerUp(Seconds(2.0), Temperature::celsius(25));

    size_t matches = 0;
    for (size_t i = 0; i < ram.sizeBytes(); ++i)
        matches += ram.readByte(i) == 0x5A;
    EXPECT_LT(static_cast<double>(matches) / ram.sizeBytes(), 0.5);
}

TEST(PowerDomain, RejectsBadConfig)
{
    EXPECT_THROW(PowerDomain("x", Volt(0.0), RegulatorKind::Ldo),
                 FatalError);
    PowerDomain dom("x", Volt(1.0), RegulatorKind::Ldo);
    EXPECT_THROW(dom.attachLoad(nullptr), PanicError);
    EXPECT_THROW(dom.attachProbe(VoltageProbe{Volt(0.0), Amp(1), Ohm(1)}),
                 FatalError);
}

TEST(PowerDomain, VoltageScalingRetentionCliff)
{
    PowerDomain dom("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    SramArray ram("ram", 8192, 12, 1);
    dom.attachLoad(&ram);
    dom.powerUp(Seconds(0.0), Temperature::celsius(25));
    ram.fill(0xA5);

    // Scaling to 0.45 V (well above the DRV tail) is lossless.
    dom.scaleVoltage(Volt::millivolts(450));
    dom.scaleVoltage(Volt(0.8));
    for (size_t i = 0; i < ram.sizeBytes(); ++i)
        ASSERT_EQ(ram.readByte(i), 0xA5);

    // Scaling to the DRV mean flips roughly half the cells' survival.
    dom.scaleVoltage(Volt::millivolts(250));
    dom.scaleVoltage(Volt(0.8));
    size_t matches = 0;
    for (size_t i = 0; i < ram.sizeBytes(); ++i)
        matches += ram.readByte(i) == 0xA5;
    const double frac = static_cast<double>(matches) / ram.sizeBytes();
    EXPECT_LT(frac, 0.5);
    EXPECT_GT(frac, 0.005);
    EXPECT_DOUBLE_EQ(dom.currentVoltage().volts(), 0.8);
}

TEST(PowerDomain, ScalingUpNeverRestores)
{
    PowerDomain dom("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    SramArray ram("ram", 2048, 13, 1);
    dom.attachLoad(&ram);
    dom.powerUp(Seconds(0.0), Temperature::celsius(25));
    ram.fill(0xFF);
    dom.scaleVoltage(Volt::millivolts(100)); // deep undervolt
    const std::vector<uint8_t> broken = ram.snapshot();
    dom.scaleVoltage(Volt(0.8));
    EXPECT_EQ(ram.snapshot(), broken);
}

TEST(PowerDomain, ScalingRejectsBadStates)
{
    PowerDomain dom("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    EXPECT_THROW(dom.scaleVoltage(Volt(0.5)), FatalError); // unpowered
    SramArray ram("ram", 64, 14, 1);
    dom.attachLoad(&ram);
    dom.powerUp(Seconds(0.0), Temperature::celsius(25));
    EXPECT_THROW(dom.scaleVoltage(Volt(0.0)), FatalError);
}

// --- Pmic / Board ---

TEST(Pmic, SequencesAllDomains)
{
    Pmic pmic("PMIC");
    pmic.addDomain("A", Volt(0.8), RegulatorKind::Buck);
    pmic.addDomain("B", Volt(1.2), RegulatorKind::Ldo);
    SramArray ra("ra", 64, 1, 1), rb("rb", 64, 1, 2);
    pmic.domain("A")->attachLoad(&ra);
    pmic.domain("B")->attachLoad(&rb);

    pmic.connectMainSupply(Seconds(0.0), Temperature::celsius(25));
    EXPECT_EQ(ra.powerState(), PowerState::Powered);
    EXPECT_EQ(rb.powerState(), PowerState::Powered);
    pmic.disconnectMainSupply(Seconds(1.0));
    EXPECT_EQ(ra.powerState(), PowerState::Off);
    EXPECT_EQ(rb.powerState(), PowerState::Off);
}

TEST(Pmic, DuplicateDomainRejected)
{
    Pmic pmic("PMIC");
    pmic.addDomain("A", Volt(0.8), RegulatorKind::Buck);
    EXPECT_THROW(pmic.addDomain("A", Volt(0.9), RegulatorKind::Ldo),
                 FatalError);
}

TEST(Board, PadAttachesToTheRightDomain)
{
    Board board("Pi4", "MxL7704");
    board.pmic().addDomain("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    board.pmic().addDomain("VDD_IO", Volt(3.3), RegulatorKind::Ldo);
    board.addTestPad("TP15", "VDD_CORE");

    PowerDomain *d = board.attachProbeAtPad(
        "TP15", VoltageProbe{Volt(0.8), Amp(3.0), Ohm(0.05)});
    EXPECT_EQ(d->name(), "VDD_CORE");
    EXPECT_TRUE(d->isProbed());
}

TEST(Board, MismatchedProbeVoltageRejected)
{
    Board board("Pi4", "MxL7704");
    board.pmic().addDomain("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    board.addTestPad("TP15", "VDD_CORE");
    // Attaching a 1.2 V probe to a 0.8 V rail would overdrive the SoC.
    EXPECT_THROW(board.attachProbeAtPad(
                     "TP15", VoltageProbe{Volt(1.2), Amp(3.0), Ohm(0.05)}),
                 FatalError);
}

TEST(Board, UnknownPadRejected)
{
    Board board("Pi4", "PMIC");
    board.pmic().addDomain("VDD_CORE", Volt(0.8), RegulatorKind::Buck);
    EXPECT_THROW(board.attachProbeAtPad(
                     "TP99", VoltageProbe{Volt(0.8), Amp(3.0), Ohm(0.05)}),
                 FatalError);
    EXPECT_THROW(board.addTestPad("TPX", "NOPE"), FatalError);
}

// --- Probe strength sweep: the ablation's backbone ---

class ProbeCurrentSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ProbeCurrentSweep, MoreCurrentNeverHurts)
{
    const double amps = GetParam();
    const auto solve = [](double limit) {
        return TransientSolver::solve(
            VoltageProbe{Volt(0.8), Amp(limit), Ohm(0.1)}, Amp(0.6),
            Amp::milliamps(8), Farad::microfarads(100),
            Seconds::microseconds(20));
    };
    EXPECT_GE(solve(amps * 2).v_min, solve(amps).v_min);
}

INSTANTIATE_TEST_SUITE_P(Currents, ProbeCurrentSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.8, 1.6,
                                           3.2));

} // namespace
} // namespace voltboot

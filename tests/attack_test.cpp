/**
 * @file
 * End-to-end tests of the Volt Boot attack pipeline and its cold-boot
 * control, against all three simulated platforms: probe attach, power
 * cycle, reboot into attacker code, RAMINDEX/JTAG extraction, analysis.
 */

#include <gtest/gtest.h>

#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "soc/soc.hh"

namespace voltboot
{
namespace
{

TEST(VoltBoot, EndToEndDCacheRecoveryIsPerfect)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // Victim: bare-metal pattern store into the d-cache.
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    const auto r =
        runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
    ASSERT_TRUE(r.halted_cleanly);

    // Attack.
    VoltBootAttack attack(soc);
    const AttackOutcome outcome = attack.execute();
    ASSERT_TRUE(outcome.probe_attached);
    ASSERT_TRUE(outcome.rebooted_into_attacker_code);
    ASSERT_TRUE(outcome.transient.has_value());
    EXPECT_FALSE(outcome.transient->current_limited);

    // Extraction: the 0xAA pattern must appear verbatim in the dump.
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    EXPECT_EQ(dump.sizeBytes(), soc.config().l1d.size_bytes);
    const std::vector<uint8_t> needle(1024, 0xAA);
    EXPECT_TRUE(dump.contains(needle));

    // Count pattern bytes: 8 KB were written; all must be present.
    size_t aa = 0;
    for (uint8_t b : dump.bytes())
        aa += b == 0xAA;
    EXPECT_GE(aa, 8192u);
}

TEST(VoltBoot, ICacheHoldsVictimMachineCode)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    ASSERT_TRUE(runner.runOn(1, workloads::nopFiller(2048)).halted_cleanly);
    const std::vector<uint8_t> code = runner.lastProgram().bytes();

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    const MemoryImage icache = attack.dumpL1(1, L1Ram::IData);

    // Figure 7: the victim's instructions stayed in the i-cache across
    // the power cycle. Grep for a whole cache line of the NOP body.
    const std::vector<uint8_t> needle(code.begin() + 8,
                                      code.begin() + 8 + 64);
    EXPECT_TRUE(icache.contains(needle));
}

TEST(VoltBoot, Bcm2837ICacheNeedsBeforeAfterComparison)
{
    // Footnote 4: the A53 i-cache stores instructions + ECC in an
    // undocumented bit order. Grepping the dump for machine code fails,
    // but before/after dumps (both through the same order) prove 100%
    // retention.
    Soc soc(SocConfig::bcm2837());
    soc.powerOn();
    BareMetalRunner runner(soc);
    ASSERT_TRUE(runner.runOn(0, workloads::nopFiller(2048)).halted_cleanly);
    const std::vector<uint8_t> code = runner.lastProgram().bytes();
    const MemoryImage before = soc.memory().l1i(0).dumpAll();

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    const MemoryImage after = attack.dumpL1(0, L1Ram::IData);

    const std::vector<uint8_t> needle(code.begin() + 8,
                                      code.begin() + 8 + 64);
    EXPECT_FALSE(after.contains(needle)) << "grep should fail on the "
                                            "ECC-interleaved dump";
    EXPECT_EQ(MemoryImage::hammingDistance(before, after), 0u);
}

TEST(VoltBoot, VectorRegistersRetainAcrossPowerCycle)
{
    Soc soc(SocConfig::bcm2837());
    soc.powerOn();
    BareMetalRunner runner(soc);
    ASSERT_TRUE(
        runner.runOn(0, workloads::vectorFill(0xFF, 0xAA)).halted_cleanly);

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    const MemoryImage regs = attack.dumpVectorRegisters(0);
    ASSERT_EQ(regs.sizeBytes(), 512u);

    // Section 7.2: even registers read 0xFF.., odd read 0xAA...
    for (size_t v = 0; v < 32; ++v) {
        const uint8_t want = (v % 2 == 0) ? 0xFF : 0xAA;
        for (size_t b = 0; b < 16; ++b)
            ASSERT_EQ(regs.byteAt(v * 16 + b), want)
                << "v" << v << " byte " << b;
    }
}

TEST(VoltBoot, IramExtractionOverJtag)
{
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    // Victim data: a synthetic bitmap image in the iRAM via JTAG.
    std::vector<uint8_t> bitmap(soc.config().iram_bytes);
    for (size_t i = 0; i < bitmap.size(); ++i)
        bitmap[i] = static_cast<uint8_t>((i / 512) ^ (i % 256));
    soc.jtag().writeIram(soc.config().iram_base, bitmap);

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    const MemoryImage dump = attack.dumpIram();
    const RetentionReport rep =
        compareImages(dump, MemoryImage(bitmap));

    // Section 7.3: ~2.7% overall error, all of it from the boot ROM
    // scratch regions; roughly 95% of the iRAM is available.
    EXPECT_GT(rep.errorFraction(), 0.005);
    EXPECT_LT(rep.errorFraction(), 0.05);

    // Outside the clobbered regions, recovery is bit-exact.
    MemoryImage mid_truth(std::vector<uint8_t>(
        bitmap.begin() + 0x8000, bitmap.begin() + 0x10000));
    EXPECT_EQ(MemoryImage::hammingDistance(dump.slice(0x8000, 0x8000),
                                           mid_truth),
              0u);
}

TEST(VoltBoot, WrongDomainProbeRetainsNothingUseful)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));

    // Attacker mistakes the SDRAM rail for the core rail.
    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.attachProbeAt("TP14").probe_attached);
    ASSERT_TRUE(attack.powerCycleAndBoot().rebooted_into_attacker_code);
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    const std::vector<uint8_t> needle(256, 0xAA);
    EXPECT_FALSE(dump.contains(needle));
}

TEST(VoltBoot, MissingPadReportsFailure)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    VoltBootAttack attack(soc);
    const AttackOutcome out = attack.attachProbeAt("TP99");
    EXPECT_FALSE(out.probe_attached);
    EXPECT_NE(out.failure_reason.find("TP99"), std::string::npos);
}

TEST(VoltBoot, WeakSupplyLosesData)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));

    AttackConfig cfg;
    cfg.probe_max_current = Amp::milliamps(50); // hobbyist USB supply
    cfg.probe_impedance = Ohm(0.8);
    VoltBootAttack attack(soc, cfg);
    const AttackOutcome out = attack.execute();
    ASSERT_TRUE(out.rebooted_into_attacker_code);
    ASSERT_TRUE(out.transient.has_value());
    EXPECT_TRUE(out.transient->current_limited);

    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    const std::vector<uint8_t> needle(256, 0xAA);
    EXPECT_FALSE(dump.contains(needle));
}

TEST(VoltBoot, ExtractionProgramDoesNotPolluteTargetCache)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 4096, 0x5C));
    const MemoryImage before = soc.memory().l1d(0).dumpAll();

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    attack.dumpL1(0, L1Ram::DData);
    attack.dumpL1(0, L1Ram::IData);
    const MemoryImage after = soc.memory().l1d(0).dumpAll();

    // Requirement (A) of Section 6.1: zero contamination.
    EXPECT_EQ(MemoryImage::hammingDistance(before, after), 0u);
}

TEST(VoltBoot, TraceNarratesTheFourSteps)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    VoltBootAttack attack(soc);
    attack.execute();
    attack.dumpL1Way(0, L1Ram::DData, 0);
    const auto &trace = attack.trace();
    ASSERT_GE(trace.size(), 4u);
    EXPECT_NE(trace[0].find("step 1"), std::string::npos);
    EXPECT_NE(trace[0].find("VDD_CORE"), std::string::npos);
    EXPECT_NE(trace[1].find("step 2"), std::string::npos);
    EXPECT_NE(trace.back().find("step 4"), std::string::npos);
}

TEST(VoltBoot, AsmExtractorMatchesHostDebugDump)
{
    // The vb64 RAMINDEX extraction program and the host-level
    // Cache::dumpAll() must see the same bytes — they are two views of
    // the same data RAM.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 4096, 0xD7));

    const MemoryImage host_view = soc.memory().l1d(0).dumpAll();

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    const MemoryImage asm_view = attack.dumpL1(0, L1Ram::DData);

    EXPECT_EQ(asm_view.bytes(), host_view.bytes());
}

TEST(VoltBoot, AllWaysExtractorProgramWorks)
{
    // workloads::ramIndexDump generates the multi-way loop variant; it
    // must agree with the per-way extractor path end to end.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 4096, 0xE3));

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);

    const CacheGeometry geom = soc.config().l1d;
    const uint64_t dump_base = soc.config().dram_base + 0x80000;
    Program p = Assembler::assemble(workloads::ramIndexDump(
        RamIndexDescriptor::kL1DData, geom.ways, geom.sets(),
        geom.line_bytes / 8, dump_base));
    p.load_address = soc.config().dram_base + 0x1000;
    soc.loadProgram(p);
    soc.runCore(0, p.load_address, 100'000'000);
    ASSERT_EQ(soc.cpu(0).fault(), CpuFault::None);

    std::vector<uint8_t> out(geom.size_bytes);
    for (size_t i = 0; i < out.size(); i += 8) {
        const uint64_t v = soc.port(0).read64(dump_base + i);
        for (int b = 0; b < 8; ++b)
            out[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
    EXPECT_EQ(MemoryImage(out).bytes(),
              soc.memory().l1d(0).dumpAll().bytes());
}

TEST(ColdBoot, FailsOnSramAtChamberTemperatures)
{
    // Table 1's control: even at -40 degC the d-cache content is gone
    // and the dump is ~50% wrong against the victim pattern.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));

    ColdBootAttack attack(soc, Temperature::celsius(-40),
                          Seconds::milliseconds(5));
    ASSERT_TRUE(attack.powerCycleAndBoot());
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);

    const MemoryImage truth = MemoryImage::filled(dump.sizeBytes(), 0xAA);
    const double err = MemoryImage::fractionalHamming(dump, truth);
    EXPECT_NEAR(err, 0.50, 0.03);
    // And the dump looks like a fresh power-up fingerprint: ~50% ones.
    EXPECT_NEAR(dump.onesDensity(), 0.5, 0.03);
}

TEST(ColdBoot, CryogenicTemperaturesPartiallyRetain)
{
    // The literature's deep-freeze regime (-110 degC, 20 ms): partial
    // retention appears, but with errors — unlike Volt Boot.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.l1dData(0).fill(0xAA);

    ColdBootAttack attack(soc, Temperature::celsius(-110),
                          Seconds::milliseconds(20));
    ASSERT_TRUE(attack.powerCycleAndBoot());
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    const MemoryImage truth = MemoryImage::filled(dump.sizeBytes(), 0xAA);
    const double err = MemoryImage::fractionalHamming(dump, truth);
    EXPECT_GT(err, 0.001); // not error-free...
    EXPECT_LT(err, 0.20);  // ...but mostly retained
}

TEST(ColdBoot, AuthenticatedBootAlsoBlocksColdBoot)
{
    SocConfig cfg = SocConfig::bcm2711();
    cfg.authenticated_boot = true;
    Soc soc(cfg);
    soc.powerOn();
    ColdBootAttack attack(soc, Temperature::celsius(-40));
    EXPECT_FALSE(attack.powerCycleAndBoot());
}

TEST(VoltBoot, AllFourCoresExtractIndependently)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    // Distinct pattern per core in each core's private L1.
    for (size_t core = 0; core < 4; ++core) {
        const uint64_t base =
            soc.config().dram_base + 0x40000 + core * 0x10000;
        runner.runOn(core, workloads::patternStore(
                               base, 4096,
                               static_cast<uint8_t>(0xA0 + core)));
    }

    VoltBootAttack attack(soc);
    ASSERT_TRUE(attack.execute().rebooted_into_attacker_code);
    for (size_t core = 0; core < 4; ++core) {
        const MemoryImage dump = attack.dumpL1(core, L1Ram::DData);
        const std::vector<uint8_t> needle(
            256, static_cast<uint8_t>(0xA0 + core));
        EXPECT_TRUE(dump.contains(needle)) << "core " << core;
    }
}

} // namespace
} // namespace voltboot

/**
 * @file
 * Tests for the OS layer: workload generators, the Linux contention
 * model, and the Table 4 recovery dynamics (full recovery for small
 * arrays, partial at cache-sized working sets).
 */

#include <gtest/gtest.h>

#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/linux_model.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "soc/soc.hh"

namespace voltboot
{
namespace
{

TEST(Workloads, NopFillerAssembles)
{
    const Program p = Assembler::assemble(workloads::nopFiller(100));
    // prologue (2) + nops (100) + hlt (1)
    EXPECT_EQ(p.words.size(), 103u);
}

TEST(Workloads, PatternStoreAssemblesAndRuns)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    const auto r =
        runner.runOn(0, workloads::patternStore(base, 1024, 0x5A));
    ASSERT_TRUE(r.halted_cleanly);
    // The data must be resident-dirty in the d-cache, not in DRAM:
    // write-back means memory still holds pre-store garbage.
    Cache &l1d = soc.memory().l1d(0);
    EXPECT_TRUE(l1d.probeHit(base));
    EXPECT_EQ(l1d.read64(base, true), 0x5A5A5A5A5A5A5A5Aull);
}

TEST(Workloads, PatternStoreRejectsMisalignment)
{
    EXPECT_THROW(workloads::patternStore(0x1000, 1001, 0xAA), FatalError);
}

TEST(Workloads, VectorFillSetsAllRegisters)
{
    Soc soc(SocConfig::bcm2837());
    soc.powerOn();
    BareMetalRunner runner(soc);
    ASSERT_TRUE(
        runner.runOn(0, workloads::vectorFill(0x11, 0x22)).halted_cleanly);
    EXPECT_EQ(soc.cpu(0).v(0, 0), 0x1111111111111111ull);
    EXPECT_EQ(soc.cpu(0).v(1, 1), 0x2222222222222222ull);
    EXPECT_EQ(soc.cpu(0).v(30, 0), 0x1111111111111111ull);
    EXPECT_EQ(soc.cpu(0).v(31, 1), 0x2222222222222222ull);
}

TEST(Workloads, LoadImm64BuildsArbitraryConstants)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const std::string src =
        workloads::loadImm64("x1", 0xDEADBEEFCAFEF00Dull) + "    hlt\n";
    ASSERT_TRUE(runner.runOn(0, src).halted_cleanly);
    EXPECT_EQ(soc.cpu(0).x(1), 0xDEADBEEFCAFEF00Dull);
}

TEST(Workloads, RamIndexDumpProgramAssembles)
{
    const Program p = Assembler::assemble(
        workloads::ramIndexDump(0, 2, 256, 8, 0x80000));
    EXPECT_GT(p.words.size(), 20u);
}

TEST(LinuxModel, BootEnablesCaches)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    LinuxModel linux_model(soc);
    linux_model.boot();
    for (size_t core = 0; core < soc.coreCount(); ++core) {
        EXPECT_TRUE(soc.memory().l1d(core).enabled());
        EXPECT_TRUE(soc.memory().l1i(core).enabled());
    }
}

TEST(LinuxModel, RequiresPower)
{
    Soc soc(SocConfig::bcm2711());
    LinuxModel linux_model(soc);
    EXPECT_THROW(linux_model.boot(), FatalError);
}

TEST(LinuxModel, BenchmarkProducesUniqueElements)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    LinuxModel linux_model(soc);
    linux_model.boot();
    const auto truth = linux_model.runArrayBenchmark(4096);
    ASSERT_EQ(truth.size(), 4u);
    for (const auto &v : truth) {
        EXPECT_EQ(v.elements.size(), 512u);
        // Elements are globally unique (encode core and index).
        for (size_t i = 1; i < v.elements.size(); ++i)
            ASSERT_NE(v.elements[i], v.elements[0]);
    }
    EXPECT_NE(truth[0].elements[0], truth[1].elements[0]);
    EXPECT_GT(linux_model.noiseAccesses(), 0u);
}

/** Run the Table 4 pipeline once and return union-recovery per core. */
std::vector<double>
table4Recovery(size_t array_bytes, uint64_t seed)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    LinuxModelConfig cfg;
    cfg.seed = seed;
    LinuxModel linux_model(soc, cfg);
    linux_model.boot();
    const auto truth = linux_model.runArrayBenchmark(array_bytes);

    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code)
        fatal("attack failed");

    std::vector<double> recovery;
    for (size_t core = 0; core < truth.size(); ++core) {
        std::vector<MemoryImage> ways;
        for (size_t w = 0; w < soc.config().l1d.ways; ++w)
            ways.push_back(attack.dumpL1Way(core, L1Ram::DData, w));
        const ElementRecovery er =
            recoverElements(ways, truth[core].elements);
        recovery.push_back(er.fractionRecovered());
    }
    return recovery;
}

TEST(LinuxModel, SmallArrayFullyRecovered)
{
    // Table 4, 4 KB column: 100% of elements recovered on every core.
    for (double r : table4Recovery(4096, 1))
        EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(LinuxModel, HalfCacheArrayEssentiallyFullyRecovered)
{
    // Table 4, 16 KB column: essentially full recovery (paper's worst
    // 16 KB cell is 99.85%; per-core trial variance reaches ~99%).
    for (double r : table4Recovery(16 * 1024, 2))
        EXPECT_GE(r, 0.99);
}

TEST(LinuxModel, CacheSizedArrayLosesAboutTenPercent)
{
    // Table 4, 32 KB column: ~86-92% recovered.
    for (double r : table4Recovery(32 * 1024, 3)) {
        EXPECT_GE(r, 0.80);
        EXPECT_LE(r, 0.97);
    }
}

TEST(LinuxModel, RunsRealProgramWithCachesOn)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    LinuxModel linux_model(soc);
    linux_model.boot();
    Program p = Assembler::assemble(workloads::nopFiller(256));
    p.load_address = soc.config().dram_base + 0x2000;
    linux_model.runProgramOnCore(2, p);
    EXPECT_TRUE(soc.cpu(2).halted());
    // The program's code is now i-cache resident on core 2.
    const MemoryImage icache = soc.memory().l1i(2).dumpAll();
    const std::vector<uint8_t> code = p.bytes();
    const std::vector<uint8_t> needle(code.begin() + 8,
                                      code.begin() + 8 + 64);
    EXPECT_TRUE(icache.contains(needle));
}

} // namespace
} // namespace voltboot

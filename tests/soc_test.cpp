/**
 * @file
 * Integration tests for the Soc: device database, power-cycle semantics
 * per domain, boot-ROM behaviour (VideoCore L2 clobber, i.MX iRAM
 * scratch), JTAG access rules, and program execution on the cores.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "soc/soc.hh"

namespace voltboot
{
namespace
{

TEST(SocConfig, PlatformDatabaseMatchesTable2)
{
    const SocConfig pi4 = SocConfig::bcm2711();
    EXPECT_EQ(pi4.cpu_name, "Cortex-A72");
    EXPECT_EQ(pi4.core_count, 4u);
    EXPECT_EQ(pi4.l1d.size_bytes, 32u * 1024);
    EXPECT_EQ(pi4.l1d.ways, 2u);
    EXPECT_EQ(pi4.l1d.sets(), 256u);
    EXPECT_EQ(pi4.attack_pad, "TP15");
    EXPECT_DOUBLE_EQ(pi4.core_domain.nominal.volts(), 0.8);

    const SocConfig pi3 = SocConfig::bcm2837();
    EXPECT_EQ(pi3.cpu_name, "Cortex-A53");
    EXPECT_EQ(pi3.attack_pad, "PP58");
    EXPECT_DOUBLE_EQ(pi3.core_domain.nominal.volts(), 1.2);

    const SocConfig imx = SocConfig::imx535();
    EXPECT_EQ(imx.cpu_name, "Cortex-A8");
    EXPECT_EQ(imx.core_count, 1u);
    EXPECT_EQ(imx.iram_bytes, 128u * 1024);
    EXPECT_EQ(imx.attack_pad, "SH13");
    EXPECT_TRUE(imx.jtag_enabled);
    EXPECT_DOUBLE_EQ(imx.mem_domain.nominal.volts(), 1.3);

    EXPECT_EQ(SocConfig::allPlatforms().size(), 3u);
}

TEST(Soc, PowersOnWithPadsWired)
{
    Soc soc(SocConfig::bcm2711());
    EXPECT_FALSE(soc.poweredOn());
    soc.powerOn();
    EXPECT_TRUE(soc.poweredOn());
    EXPECT_NE(soc.board().findPad("TP15"), nullptr);
    EXPECT_EQ(soc.board().findPad("TP15")->domain_name, "VDD_CORE");
    EXPECT_EQ(soc.bootCount(), 1u);
}

TEST(Soc, RunsAProgram)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    Program p = Assembler::assemble(R"(
        movz x1, #21
        add x1, x1, x1
        hlt
    )");
    p.load_address = 0x1000;
    soc.loadProgram(p);
    soc.runCore(0, 0x1000, 1000);
    EXPECT_EQ(soc.cpu(0).x(1), 42u);
    EXPECT_TRUE(soc.cpu(0).halted());
}

TEST(Soc, PowerCycleWithoutProbeScramblesL1)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.l1dData(0).fill(0xA5);
    soc.powerCycle(Seconds::milliseconds(500));
    size_t matches = 0;
    MemoryArray &a = soc.l1dData(0);
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        matches += a.readByte(i) == 0xA5;
    EXPECT_LT(static_cast<double>(matches) / a.sizeBytes(), 0.05);
    EXPECT_EQ(soc.bootCount(), 2u);
}

TEST(Soc, ProbedPowerCycleRetainsCoreDomain)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.l1dData(2).fill(0x3C);
    soc.vRegs(1).fill(0x77);

    VoltageProbe probe{Volt(0.8), Amp(3.0), Ohm(0.05)};
    soc.attachProbe("TP15", probe);
    soc.powerCycle(Seconds::milliseconds(500));

    // Everything in VDD_CORE survived: L1 data and register files.
    for (size_t i = 0; i < soc.l1dData(2).sizeBytes(); ++i)
        ASSERT_EQ(soc.l1dData(2).readByte(i), 0x3C);
    for (size_t i = 0; i < soc.vRegs(1).sizeBytes(); ++i)
        ASSERT_EQ(soc.vRegs(1).readByte(i), 0x77);
    // DRAM (memory domain, unprobed) did not survive its power cycle.
    EXPECT_EQ(soc.dramArray().powerState(), PowerState::Powered);
}

TEST(Soc, ProbeVoltageMustMatchRail)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    EXPECT_THROW(
        soc.attachProbe("TP15", VoltageProbe{Volt(1.3), Amp(3), Ohm(0.05)}),
        FatalError);
}

TEST(Soc, VideoCoreClobbersL2AcrossProbedCycle)
{
    // Even with the memory domain held, the Pi's VideoCore overwrites
    // the shared L2 during boot — Section 6.2's negative result.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.l2Data()->fill(0x42);
    soc.attachProbe("TP14", VoltageProbe{Volt(1.1), Amp(3), Ohm(0.05)});
    soc.powerCycle(Seconds::milliseconds(100));
    size_t matches = 0;
    for (size_t i = 0; i < soc.l2Data()->sizeBytes(); ++i)
        matches += soc.l2Data()->readByte(i) == 0x42;
    EXPECT_LT(static_cast<double>(matches) / soc.l2Data()->sizeBytes(),
              0.01);
}

TEST(Soc, ImxBootRomScratchesIramRegions)
{
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    MemoryArray *iram = soc.iramArray();
    ASSERT_NE(iram, nullptr);
    iram->fill(0xEE);
    soc.attachProbe("SH13", VoltageProbe{Volt(1.3), Amp(3), Ohm(0.05)});
    soc.powerCycle(Seconds::milliseconds(200));

    const SocConfig &cfg = soc.config();
    // Inside the scratch region the pattern is gone...
    size_t clobbered_matches = 0, clobbered_total = 0;
    for (const BootClobber &r : cfg.iram_boot_clobbers) {
        for (uint64_t a = r.begin; a < r.end; ++a) {
            clobbered_matches +=
                iram->readByte(a - cfg.iram_base) == 0xEE;
            ++clobbered_total;
        }
    }
    EXPECT_LT(static_cast<double>(clobbered_matches) / clobbered_total,
              0.02);
    // ...but a mid-iRAM address far from the scratch survived exactly.
    EXPECT_EQ(iram->readByte(0x8000), 0xEE);
    EXPECT_EQ(iram->readByte(0x10000), 0xEE);
}

TEST(Soc, ImxProbeRetainsOnlyTheIramDomain)
{
    // VDDAL1 (pad SH13) feeds the on-chip L1 memories. Holding it must
    // NOT carry the external DDR or the core complex through the cycle.
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    soc.iramArray()->fill(0x5A);
    soc.dramArray().fill(0x33);
    soc.l1dData(0).fill(0x44);

    soc.attachProbe("SH13", VoltageProbe{Volt(1.3), Amp(3), Ohm(0.05)});
    // 10 s off: far beyond DRAM's room-temperature remanence (seconds)
    // while the probed iRAM holds indefinitely.
    soc.powerCycle(Seconds(10.0));

    // iRAM survived everywhere outside the boot-ROM scratch.
    EXPECT_EQ(soc.iramArray()->readByte(0x8000), 0x5A);
    // DRAM and L1 did not.
    size_t dram_matches = 0;
    for (size_t i = 0; i < 4096; ++i)
        dram_matches += soc.dramArray().readByte(i) == 0x33;
    EXPECT_LT(dram_matches, 400u);
    size_t l1_matches = 0;
    for (size_t i = 0; i < soc.l1dData(0).sizeBytes(); ++i)
        l1_matches += soc.l1dData(0).readByte(i) == 0x44;
    EXPECT_LT(static_cast<double>(l1_matches) /
                  soc.l1dData(0).sizeBytes(),
              0.05);
}

TEST(Soc, JtagOnlyOnRomBootParts)
{
    Soc pi(SocConfig::bcm2711());
    EXPECT_FALSE(pi.jtag().available());
    EXPECT_THROW(pi.jtag().readIram(0, 16), FatalError);

    Soc imx(SocConfig::imx535());
    imx.powerOn();
    EXPECT_TRUE(imx.jtag().available());
    std::vector<uint8_t> pattern{1, 2, 3, 4};
    imx.jtag().writeIram(0xF8000000, pattern);
    const MemoryImage img = imx.jtag().readIram(0xF8000000, 4);
    EXPECT_EQ(img.bytes(), pattern);
    EXPECT_THROW(imx.jtag().readIram(0xF8000000, 256 * 1024), FatalError);
}

TEST(Soc, AuthenticatedBootRejectsAttackerMedia)
{
    SocConfig cfg = SocConfig::bcm2711();
    cfg.authenticated_boot = true;
    Soc soc(cfg);
    soc.powerOn();
    Program p = Assembler::assemble("    hlt\n");
    p.load_address = 0x1000;
    EXPECT_FALSE(soc.bootFromExternalMedia(p));
}

TEST(Soc, BootSramResetZeroisesEverything)
{
    SocConfig cfg = SocConfig::bcm2711();
    cfg.boot_sram_reset = true;
    Soc soc(cfg);
    soc.powerOn();
    soc.l1dData(0).fill(0xFF);
    soc.attachProbe("TP15", VoltageProbe{Volt(0.8), Amp(3), Ohm(0.05)});
    soc.powerCycle(Seconds::milliseconds(100));
    // The probe held the cells — but the boot-time reset wiped them.
    for (size_t i = 0; i < soc.l1dData(0).sizeBytes(); ++i)
        ASSERT_EQ(soc.l1dData(0).readByte(i), 0x00);
}

TEST(Soc, RegistersSurviveWarmRebootByDefault)
{
    // Without the probe trick, a plain reboot (power stays on) keeps
    // register contents — the hardware never clears them.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.cpu(0).setV(7, 0, 0x1122334455667788ull);
    Program p = Assembler::assemble("    hlt\n");
    p.load_address = 0x1000;
    ASSERT_TRUE(soc.bootFromExternalMedia(p));
    EXPECT_EQ(soc.cpu(0).v(7, 0), 0x1122334455667788ull);
}

TEST(BareMetalRunner, RunsOnAllCores)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const auto results = runner.runOnAllCores(R"(
        mrs x1, coreid
        add x1, x1, #100
        hlt
    )");
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.halted_cleanly) << "core " << r.core;
        EXPECT_EQ(soc.cpu(r.core).x(1), 100u + r.core);
    }
}

TEST(BareMetalRunner, CachedExecutionFillsICache)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    const auto r = runner.runOn(0, workloads::nopFiller(512));
    ASSERT_TRUE(r.halted_cleanly);
    // The program's machine code must now be resident in the i-cache
    // data RAM (dirty-read through the debug view).
    const MemoryImage icache = soc.memory().l1i(0).dumpAll();
    const std::vector<uint8_t> code = runner.lastProgram().bytes();
    // Look for a 64-byte line worth of NOP encodings.
    const std::vector<uint8_t> needle(code.begin() + 8,
                                      code.begin() + 8 + 64);
    EXPECT_TRUE(icache.contains(needle));
}

TEST(Soc, DetachingProbeMidRetentionLosesTheData)
{
    // Failure injection: the attacker's clip slips off while the board
    // is unpowered. Retention ends immediately; by the time the board
    // comes back, the SRAM has decayed like any cold boot.
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    soc.l1dData(0).fill(0x6B);
    soc.attachProbe("TP15", VoltageProbe{Volt(0.8), Amp(3), Ohm(0.05)});
    soc.powerOff();
    EXPECT_EQ(soc.l1dData(0).powerState(), PowerState::Retained);

    soc.detachProbe("TP15"); // the clip slips
    EXPECT_EQ(soc.l1dData(0).powerState(), PowerState::Off);

    soc.advanceTime(Seconds::milliseconds(500));
    soc.powerOn();
    size_t matches = 0;
    for (size_t i = 0; i < soc.l1dData(0).sizeBytes(); ++i)
        matches += soc.l1dData(0).readByte(i) == 0x6B;
    EXPECT_LT(static_cast<double>(matches) /
                  soc.l1dData(0).sizeBytes(),
              0.05);
}

TEST(Soc, ImxExecutesFromIram)
{
    // The i.MX535 behaves as a microcontroller at startup: code can run
    // straight out of the iRAM window, bypassing the cache hierarchy.
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    Program p = Assembler::assemble(R"(
        movz x1, #0x55
        add x1, x1, #1
        hlt
    )");
    const uint64_t entry = soc.config().iram_base + 0x4000;
    soc.jtag().writeIram(entry, p.bytes());
    soc.runCore(0, entry, 100);
    EXPECT_TRUE(soc.cpu(0).halted());
    EXPECT_EQ(soc.cpu(0).x(1), 0x56u);

    // Data accesses in the window also bypass the caches.
    soc.port(0).write64(soc.config().iram_base + 0x8000,
                        0x1234567890ABCDEFull);
    EXPECT_EQ(soc.iramArray()->readWord64(0x8000),
              0x1234567890ABCDEFull);
    EXPECT_FALSE(soc.memory().l1d(0).probeHit(soc.config().iram_base +
                                              0x8000));
}

TEST(Soc, AmbientTemperatureGovernsDecay)
{
    // At deep cryogenic temperature, a short power cycle preserves most
    // of the cache (the literature's SRAM remanence); at -40 degC it
    // preserves nothing. Same device, same off-time.
    for (const auto &[celsius, min_frac, max_frac] :
         {std::tuple{-140.0, 0.80, 1.00}, std::tuple{-40.0, 0.0, 0.10}}) {
        Soc soc(SocConfig::bcm2711());
        soc.setAmbient(Temperature::celsius(celsius));
        soc.powerOn();
        soc.l1dData(0).fill(0xA5);
        soc.powerCycle(Seconds::milliseconds(2));
        size_t matches = 0;
        MemoryArray &a = soc.l1dData(0);
        for (size_t i = 0; i < a.sizeBytes(); ++i)
            matches += a.readByte(i) == 0xA5;
        const double frac =
            static_cast<double>(matches) / a.sizeBytes();
        EXPECT_GE(frac, min_frac) << "at " << celsius;
        EXPECT_LE(frac, max_frac) << "at " << celsius;
    }
}

} // namespace
} // namespace voltboot

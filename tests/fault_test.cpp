/**
 * @file
 * Tests for the voltage-glitch fault-injection subsystem: the crowbar
 * pulse waveform, the timing-fault model (thresholds, probabilities,
 * counter-seeded determinism), the CPU's fault-injector hook, the
 * signature-check victim, and the GlitchAttack end to end — including
 * the degenerate-pulse no-op property (a zero-width or zero-depth
 * glitch is byte-identical to no glitch at all).
 */

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <vector>

#include "core/attack.hh"
#include "fault/fault_model.hh"
#include "fault/glitch.hh"
#include "isa/assembler.hh"
#include "isa/cpu.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"
#include "trace/trace.hh"

using namespace voltboot;

namespace
{

// --- GlitchWaveform --------------------------------------------------

fault::GlitchParams
pulse(double off_ns, double width_ns, double depth_v)
{
    fault::GlitchParams p;
    p.offset = Seconds::nanoseconds(off_ns);
    p.width = Seconds::nanoseconds(width_ns);
    p.depth = Volt(depth_v);
    return p;
}

TEST(GlitchWaveform, NominalOutsideThePulse)
{
    // RC = 1 ohm * 1 nF = 1 ns edge slew.
    const fault::GlitchWaveform w(Volt(1.0), pulse(10, 10, 0.4),
                                  Ohm(1.0), Farad(1e-9));
    EXPECT_DOUBLE_EQ(w.at(Seconds(0.0)).volts(), 1.0);
    EXPECT_DOUBLE_EQ(w.at(Seconds::nanoseconds(10)).volts(), 1.0);
    EXPECT_DOUBLE_EQ(w.at(Seconds::nanoseconds(20)).volts(), 1.0);
    EXPECT_DOUBLE_EQ(w.at(Seconds::nanoseconds(25)).volts(), 1.0);
    EXPECT_DOUBLE_EQ(w.end().seconds(), 20e-9);
}

TEST(GlitchWaveform, TrapezoidFallsFloorsAndRecovers)
{
    const fault::GlitchWaveform w(Volt(1.0), pulse(10, 10, 0.4),
                                  Ohm(1.0), Farad(1e-9));
    EXPECT_DOUBLE_EQ(w.floor().volts(), 0.6);
    // Halfway down the 1 ns falling edge.
    EXPECT_NEAR(w.at(Seconds::nanoseconds(10.5)).volts(), 0.8, 1e-12);
    // Flat floor between the edges.
    EXPECT_NEAR(w.at(Seconds::nanoseconds(11)).volts(), 0.6, 1e-12);
    EXPECT_NEAR(w.at(Seconds::nanoseconds(15)).volts(), 0.6, 1e-12);
    EXPECT_NEAR(w.at(Seconds::nanoseconds(19)).volts(), 0.6, 1e-12);
    // Halfway back up the recovery edge.
    EXPECT_NEAR(w.at(Seconds::nanoseconds(19.5)).volts(), 0.8, 1e-12);
}

TEST(GlitchWaveform, EdgeSlewClampsToHalfTheWidth)
{
    // RC = 1 us >> width: the trapezoid degenerates to a triangle
    // whose edges meet at the pulse centre.
    const fault::GlitchWaveform w(Volt(1.0), pulse(0, 10, 0.4),
                                  Ohm(1.0), Farad(1e-6));
    EXPECT_DOUBLE_EQ(w.edge().seconds(), 5e-9);
    EXPECT_NEAR(w.at(Seconds::nanoseconds(5)).volts(), 0.6, 1e-12);
    EXPECT_NEAR(w.at(Seconds::nanoseconds(2.5)).volts(), 0.8, 1e-12);
}

TEST(GlitchWaveform, FloorClampsAtZero)
{
    const fault::GlitchWaveform w(Volt(0.5), pulse(0, 10, 2.0),
                                  Ohm(1.0), Farad(1e-9));
    EXPECT_DOUBLE_EQ(w.floor().volts(), 0.0);
    EXPECT_DOUBLE_EQ(w.at(Seconds::nanoseconds(5)).volts(), 0.0);
}

TEST(GlitchWaveform, DegenerateParams)
{
    EXPECT_TRUE(pulse(10, 0, 0.4).degenerate());
    EXPECT_TRUE(pulse(10, 5, 0.0).degenerate());
    EXPECT_TRUE(pulse(10, -1, 0.4).degenerate());
    EXPECT_FALSE(pulse(10, 5, 0.4).degenerate());
}

// --- TimingFaultModel ------------------------------------------------

TEST(TimingFaultModel, ThresholdVoltagesDeriveFromNominal)
{
    const fault::GlitchWaveform w(Volt(0.8), pulse(0, 10, 0.4),
                                  Ohm(1.0), Farad(1e-9));
    fault::TimingFaultConfig cfg;
    cfg.margin_fraction = 0.9;
    cfg.crash_fraction = 0.5;
    const fault::TimingFaultModel m(cfg, w, Seconds::nanoseconds(1));
    EXPECT_NEAR(m.marginVoltage().volts(), 0.72, 1e-12);
    EXPECT_NEAR(m.crashVoltage().volts(), 0.40, 1e-12);

    EXPECT_DOUBLE_EQ(m.faultProbability(Volt(0.8)), 0.0);
    EXPECT_NEAR(m.faultProbability(Volt(0.72)), 0.0, 1e-12);
    EXPECT_NEAR(m.faultProbability(Volt(0.56)), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(m.faultProbability(Volt(0.40)), 1.0);
    EXPECT_DOUBLE_EQ(m.faultProbability(Volt(0.10)), 1.0);
}

TEST(TimingFaultModel, ShallowDroopNeverFaults)
{
    // Floor 0.75 V stays above the 0.72 V timing margin: probability is
    // identically zero at every boundary.
    const fault::GlitchWaveform w(Volt(0.8), pulse(5, 20, 0.05),
                                  Ohm(1.0), Farad(1e-9));
    fault::TimingFaultModel m({}, w, Seconds::nanoseconds(1));
    for (uint64_t retired = 0; retired < 40; ++retired)
        EXPECT_EQ(m.onInstruction(0x1000 + retired * 4, 0x0b000000,
                                  retired)
                      .effect,
                  FaultEffect::None);
    EXPECT_EQ(m.faultsInjected(), 0u);
    EXPECT_TRUE(m.events().empty());
}

TEST(TimingFaultModel, CounterSeededDrawsAreReproducible)
{
    const fault::GlitchWaveform w(Volt(0.8), pulse(5, 20, 0.5),
                                  Ohm(1.0), Farad(1e-9));
    fault::TimingFaultConfig cfg;
    cfg.seed = 0x1234;
    fault::TimingFaultModel a(cfg, w, Seconds::nanoseconds(1));
    fault::TimingFaultModel b(cfg, w, Seconds::nanoseconds(1));
    // Replay b's boundaries in reverse: counter-based draws depend only
    // on the retired index, never on shared mutable RNG state.
    std::vector<FaultAction> fwd, rev(40);
    for (uint64_t r = 0; r < 40; ++r)
        fwd.push_back(a.onInstruction(0x1000 + r * 4, 0x0b000000, r));
    for (uint64_t r = 40; r-- > 0;)
        rev[r] = b.onInstruction(0x1000 + r * 4, 0x0b000000, r);
    ASSERT_EQ(fwd.size(), rev.size());
    uint64_t fired = 0;
    for (size_t i = 0; i < fwd.size(); ++i) {
        EXPECT_EQ(fwd[i].effect, rev[i].effect);
        EXPECT_EQ(fwd[i].insn_override, rev[i].insn_override);
        EXPECT_EQ(fwd[i].branch_target, rev[i].branch_target);
        EXPECT_EQ(fwd[i].reg, rev[i].reg);
        EXPECT_EQ(fwd[i].bit, rev[i].bit);
        fired += fwd[i].effect != FaultEffect::None;
    }
    // The pulse floor (0.3 V) is below the crash voltage: the boundaries
    // riding the floor fault with probability one.
    EXPECT_GT(fired, 0u);
    EXPECT_EQ(a.faultsInjected(), fired);
}

// --- the CPU's injector hook -----------------------------------------

/** Fires one scripted FaultAction at a chosen retired index. */
class ScriptedInjector : public FaultInjector
{
  public:
    ScriptedInjector(uint64_t at, FaultAction action)
        : at_(at), action_(action)
    {}

    FaultAction
    onInstruction(uint64_t, uint32_t, uint64_t retired) override
    {
        return retired == at_ ? action_ : FaultAction{};
    }

  private:
    uint64_t at_;
    FaultAction action_;
};

/** Run the three-movz victim with @p action fired at retired index 1
 * (the `movz x2` instruction) and return (x1, x2, x3). */
std::array<uint64_t, 3>
runWithFault(const FaultAction &action)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    const uint64_t load = soc.config().dram_base + 0x1000;
    Program p = Assembler::assemble("    movz x1, #1\n"
                                    "    movz x2, #2\n"
                                    "    movz x3, #3\n"
                                    "    hlt\n");
    p.load_address = load;
    soc.loadProgram(p);
    soc.memory().l1i(0).invalidateAll();

    Cpu &cpu = soc.cpu(0);
    ScriptedInjector injector(1, action);
    cpu.setFaultInjector(&injector);
    cpu.reset(load);
    // The register file powers up to SRAM garbage; zero the observed
    // registers so "never written" reads back as zero.
    for (unsigned r : {1u, 2u, 3u, 7u})
        cpu.setX(r, 0);
    cpu.run(100);
    cpu.setFaultInjector(nullptr);
    EXPECT_TRUE(cpu.halted());
    return {cpu.x(1), cpu.x(2), cpu.x(3)};
}

TEST(CpuFaultHook, SkipDropsOneInstruction)
{
    FaultAction a;
    a.effect = FaultEffect::Skip;
    const auto regs = runWithFault(a);
    EXPECT_EQ(regs[0], 1u);
    EXPECT_EQ(regs[1], 0u); // movz x2 never executed
    EXPECT_EQ(regs[2], 3u);
}

TEST(CpuFaultHook, OpcodeCorruptExecutesTheOverride)
{
    FaultAction a;
    a.effect = FaultEffect::OpcodeCorrupt;
    // Decode latched a different immediate into a different register.
    a.insn_override = Assembler::assemble("movz x7, #77").words.at(0);
    const auto regs = runWithFault(a);
    EXPECT_EQ(regs[0], 1u);
    EXPECT_EQ(regs[1], 0u);
    EXPECT_EQ(regs[2], 3u);

    Soc soc(SocConfig::bcm2711());
    soc.powerOn(); // fresh run just to read x7
    const uint64_t load = soc.config().dram_base + 0x1000;
    Program p = Assembler::assemble("    movz x1, #1\n"
                                    "    movz x2, #2\n"
                                    "    movz x3, #3\n"
                                    "    hlt\n");
    p.load_address = load;
    soc.loadProgram(p);
    soc.memory().l1i(0).invalidateAll();
    ScriptedInjector injector(1, a);
    soc.cpu(0).setFaultInjector(&injector);
    soc.cpu(0).reset(load);
    soc.cpu(0).setX(7, 0);
    soc.cpu(0).run(100);
    soc.cpu(0).setFaultInjector(nullptr);
    EXPECT_EQ(soc.cpu(0).x(7), 77u);
}

TEST(CpuFaultHook, WrongBranchRedirectsControlFlow)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    const uint64_t load = soc.config().dram_base + 0x1000;
    Program p = Assembler::assemble("    movz x1, #1\n"
                                    "    movz x2, #2\n"
                                    "    movz x3, #3\n"
                                    "    hlt\n");
    p.load_address = load;
    soc.loadProgram(p);
    soc.memory().l1i(0).invalidateAll();

    FaultAction a;
    a.effect = FaultEffect::WrongBranch;
    a.branch_target = load + 12; // straight to hlt
    ScriptedInjector injector(1, a);
    soc.cpu(0).setFaultInjector(&injector);
    soc.cpu(0).reset(load);
    for (unsigned r : {1u, 2u, 3u})
        soc.cpu(0).setX(r, 0);
    soc.cpu(0).run(100);
    soc.cpu(0).setFaultInjector(nullptr);
    EXPECT_TRUE(soc.cpu(0).halted());
    EXPECT_EQ(soc.cpu(0).x(1), 1u);
    EXPECT_EQ(soc.cpu(0).x(2), 0u);
    EXPECT_EQ(soc.cpu(0).x(3), 0u);
}

TEST(CpuFaultHook, RegisterBitFlipPerturbsStateBeforeExecution)
{
    FaultAction a;
    a.effect = FaultEffect::RegisterBitFlip;
    a.reg = 1;
    a.bit = 4;
    const auto regs = runWithFault(a);
    EXPECT_EQ(regs[0], 1u ^ 16u); // x1 flipped, movz x2 still executes
    EXPECT_EQ(regs[1], 2u);
    EXPECT_EQ(regs[2], 3u);
}

// --- the signature-check victim --------------------------------------

TEST(SignatureCheck, AcceptsTheGenuineTagAndRejectsOthers)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    const uint64_t dram = soc.config().dram_base;
    const uint64_t fw_base = dram + 0x8000;
    const uint64_t result = dram + 0x400;

    std::vector<uint64_t> fw{0x1111, 0x2222, 0x3333};
    std::vector<uint8_t> bytes(fw.size() * 8);
    for (size_t i = 0; i < fw.size(); ++i)
        for (size_t b = 0; b < 8; ++b)
            bytes[i * 8 + b] = static_cast<uint8_t>(fw[i] >> (8 * b));
    soc.loadBytes(fw_base, bytes);

    const uint64_t tag = workloads::signatureCheckTag(fw);
    BareMetalRunner runner(soc);
    runner.runOn(0, workloads::signatureCheck(fw_base, fw.size(), tag,
                                              result));
    EXPECT_EQ(soc.port(0).read64(result), 1u);

    runner.runOn(0, workloads::signatureCheck(fw_base, fw.size(),
                                              tag ^ 1, result));
    EXPECT_EQ(soc.port(0).read64(result), 0u);
}

// --- GlitchAttack end to end -----------------------------------------

GlitchOutcome
runGlitch(GlitchConfig cfg, trace::MemoryTraceSink *sink = nullptr)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    std::optional<trace::Scope> scope;
    if (sink)
        scope.emplace(*sink);
    GlitchAttack attack(soc, cfg);
    return attack.execute();
}

TEST(GlitchAttack, NoPulseCompletesWithoutBypass)
{
    const GlitchOutcome out = runGlitch({});
    EXPECT_TRUE(out.completed);
    EXPECT_FALSE(out.bypassed);
    EXPECT_FALSE(out.crashed);
    EXPECT_EQ(out.faults_injected, 0u);
    EXPECT_GT(out.steps, 100u);
}

TEST(GlitchAttack, ShallowPulseNeverFaults)
{
    // 40 mV of droop on a 0.8 V rail stays inside the timing margin.
    GlitchConfig cfg;
    cfg.pulse = pulse(109, 2, 0.04);
    const GlitchOutcome out = runGlitch(cfg);
    EXPECT_TRUE(out.completed);
    EXPECT_FALSE(out.bypassed);
    EXPECT_EQ(out.faults_injected, 0u);
}

TEST(GlitchAttack, DeepPulseOnTheBranchBoundaryBypasses)
{
    // Offset 109 ns / width 2 ns brackets the b.ne boundary of the
    // 16-word victim; a 0.5 V droop faults it with probability one.
    // Some fault effects crash instead of bypassing, so scan a few
    // seeds: at least one must reach `pass` without a valid tag.
    uint64_t bypasses = 0, faults = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        GlitchConfig cfg;
        cfg.pulse = pulse(109, 2, 0.5);
        cfg.seed = seed;
        const GlitchOutcome out = runGlitch(cfg);
        faults += out.faults_injected;
        bypasses += out.bypassed;
        if (out.bypassed)
            EXPECT_FALSE(out.crashed);
    }
    EXPECT_GT(faults, 0u);
    EXPECT_GT(bypasses, 0u);
}

TEST(GlitchAttack, PulseEmitsBoundedTraceThatRecovers)
{
    trace::MemoryTraceSink sink;
    GlitchConfig cfg;
    cfg.pulse = pulse(50, 4, 0.3);
    runGlitch(cfg, &sink);

    const trace::TraceEvent *span = nullptr;
    double last_v = -1.0;
    size_t samples = 0;
    for (const trace::TraceEvent &ev : sink.events()) {
        if (ev.phase == trace::Phase::Complete &&
            ev.name == "glitch.pulse")
            span = &ev;
        if (ev.phase == trace::Phase::Counter &&
            ev.name.rfind("voltage.", 0) == 0) {
            ++samples;
            for (const trace::Arg &arg : ev.args)
                if (arg.key == "v")
                    last_v = std::stod(arg.json);
            EXPECT_GE(last_v, 0.5 - 1e-9); // never below nominal-depth
            EXPECT_LE(last_v, 0.8 + 1e-9);
        }
    }
    ASSERT_NE(span, nullptr);
    EXPECT_GT(samples, 0u);
    EXPECT_NEAR(last_v, 0.8, 1e-9); // recovered before the span closed
}

// --- the degenerate-pulse no-op property -----------------------------

/** Dump the victim-facing DRAM window (code, firmware, verdict). */
std::vector<uint64_t>
dramWindow(Soc &soc)
{
    std::vector<uint64_t> words;
    const uint64_t dram = soc.config().dram_base;
    for (uint64_t off = 0; off < 0x9000; off += 8)
        words.push_back(soc.port(0).read64(dram + off));
    return words;
}

TEST(GlitchAttack, DegeneratePulseIsByteIdenticalToNoGlitch)
{
    // Three configurations that must be indistinguishable: no pulse at
    // all, a zero-width pulse of nonzero depth, and a zero-depth pulse
    // of nonzero width.
    std::vector<GlitchConfig> cfgs(3);
    cfgs[1].pulse = pulse(50, 0, 0.5);
    cfgs[2].pulse = pulse(50, 2, 0.0);

    std::vector<std::string> traces;
    std::vector<GlitchOutcome> outcomes;
    std::vector<std::vector<uint64_t>> windows;
    for (const GlitchConfig &cfg : cfgs) {
        Soc soc(SocConfig::bcm2711());
        soc.powerOn();
        trace::MemoryTraceSink sink;
        GlitchOutcome out;
        {
            trace::Scope scope(sink);
            GlitchAttack attack(soc, cfg);
            out = attack.execute();
        }
        // The attack.glitch span echoes the requested pulse parameters
        // (like the trial JSON echoes its spec); strip that echo so
        // the comparison is over behaviour, not configuration.
        std::vector<trace::TraceEvent> events = sink.events();
        for (trace::TraceEvent &ev : events)
            std::erase_if(ev.args, [](const trace::Arg &arg) {
                return arg.key == "offset_s" || arg.key == "width_s" ||
                       arg.key == "depth_v";
            });
        traces.push_back(trace::toJsonl(events));
        outcomes.push_back(out);
        windows.push_back(dramWindow(soc));
    }

    for (size_t i = 1; i < cfgs.size(); ++i) {
        EXPECT_EQ(traces[0], traces[i]) << "trace stream " << i;
        EXPECT_EQ(windows[0], windows[i]) << "memory image " << i;
        EXPECT_EQ(outcomes[0].bypassed, outcomes[i].bypassed);
        EXPECT_EQ(outcomes[0].completed, outcomes[i].completed);
        EXPECT_EQ(outcomes[0].crashed, outcomes[i].crashed);
        EXPECT_EQ(outcomes[0].steps, outcomes[i].steps);
        EXPECT_EQ(outcomes[0].faults_injected,
                  outcomes[i].faults_injected);
    }
    // And none of them ever traced a pulse or injected anything.
    EXPECT_EQ(traces[0].find("glitch.pulse"), std::string::npos);
    EXPECT_EQ(outcomes[0].faults_injected, 0u);
}

} // namespace

/**
 * @file
 * Tests for the SRAM PUF and TRNG built on power-up state — the
 * Section 5.2.4 applications that keep vendors from resetting SRAM at
 * boot (and thereby enable Volt Boot).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sram/puf.hh"

namespace voltboot
{
namespace
{

TEST(SramPuf, EnrollAndAuthenticateSameChip)
{
    SramArray array("chip", 2048, 0xCAFE, 1);
    SramPuf puf(array);
    puf.enroll();
    ASSERT_TRUE(puf.enrolled());
    double hd = 1.0;
    EXPECT_TRUE(puf.authenticate(&hd));
    // Intra-chip noise stays well below the threshold.
    EXPECT_LT(hd, 0.15);
    EXPECT_GT(hd, 0.01); // metastable cells keep it nonzero
}

TEST(SramPuf, RejectsADifferentChip)
{
    SramArray genuine("a", 2048, 0xCAFE, 1);
    SramPuf puf(genuine);
    puf.enroll();

    // A clone with different silicon tries to pass with its own
    // power-up state.
    SramArray clone("b", 2048, 0xD00D, 1);
    SramPuf clone_puf(clone);
    const MemoryImage impostor = clone_puf.observe();
    const double hd =
        MemoryImage::fractionalHamming(impostor, puf.reference());
    EXPECT_GT(hd, 0.4); // near the ideal 0.5 inter-chip distance
}

TEST(SramPuf, MajorityVotingBeatsSingleObservation)
{
    // The voted reference should be closer to subsequent observations
    // than any single observation is to another.
    SramArray array("chip", 4096, 0xBEEF, 1);
    SramPuf puf(array, /*vote_rounds=*/7);
    const double single = puf.measureIntraChipHd(6);
    puf.enroll();
    double voted_total = 0;
    for (int i = 0; i < 5; ++i) {
        double hd;
        puf.authenticate(&hd);
        voted_total += hd;
    }
    EXPECT_LT(voted_total / 5, single);
}

TEST(SramPuf, AuthenticateRequiresEnrollment)
{
    SramArray array("chip", 256, 1, 1);
    SramPuf puf(array);
    EXPECT_THROW(puf.authenticate(), FatalError);
}

TEST(PufMetrics, PopulationStatistics)
{
    const PufMetrics m = measurePufMetrics(1024, 6, 4);
    // Intra-chip: ~metastable/2 = 0.09 with the calibrated fraction.
    EXPECT_GT(m.intra_chip_hd, 0.04);
    EXPECT_LT(m.intra_chip_hd, 0.14);
    // Inter-chip: close to ideal 0.5.
    EXPECT_NEAR(m.inter_chip_hd, 0.5, 0.03);
    EXPECT_NEAR(m.uniformity, 0.5, 0.03);
}

TEST(SramTrng, CalibratesToMetastableFraction)
{
    SramArray array("chip", 4096, 0xF00D, 1);
    SramTrng trng(array);
    trng.calibrate(8);
    const double fraction =
        static_cast<double>(trng.noisyCellCount()) / array.sizeBits();
    // With 8 rounds most metastable cells show themselves at least once
    // (strongly biased ones may not), so the count approaches but stays
    // below the configured metastable fraction of 0.27.
    EXPECT_GT(fraction, 0.17);
    EXPECT_LT(fraction, 0.27);
}

TEST(SramTrng, HarvestedBitsLookRandom)
{
    SramArray array("chip", 8192, 0x7217, 1);
    SramTrng trng(array);
    trng.calibrate(8);
    const auto bits = trng.harvest(4000);
    ASSERT_EQ(bits.size(), 4000u);
    EXPECT_LT(SramTrng::bias(bits), 0.05);
    EXPECT_LT(std::abs(SramTrng::serialCorrelation(bits)), 0.05);
}

TEST(SramTrng, HarvestRequiresCalibration)
{
    SramArray array("chip", 256, 1, 2);
    SramTrng trng(array);
    EXPECT_THROW(trng.harvest(8), FatalError);
}

TEST(SramTrng, DifferentHarvestsDiffer)
{
    SramArray array("chip", 4096, 0xAB, 1);
    SramTrng trng(array);
    trng.calibrate(8);
    const auto a = trng.harvest(256);
    const auto b = trng.harvest(256);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace voltboot

/**
 * @file
 * Proof-of-exactness tests for the threshold-transformed retention
 * kernels: the fast and reference paths must be *byte-identical* on
 * every scenario — array transitions, full attacks, whole campaigns —
 * and the integer thresholds must classify every raw hash value exactly
 * as the scalar transcendental predicates do. Also guards the paper's
 * calibration anchor points through the fast kernel.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "campaign/campaign.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"
#include "sram/fingerprint_cache.hh"
#include "sram/memory_array.hh"
#include "sram/retention_kernel.hh"
#include "sram/retention_model.hh"

namespace voltboot
{
namespace
{

/** RAII kernel selection (restores the previous choice on scope exit). */
struct KernelGuard
{
    explicit KernelGuard(RetentionKernel k) : saved(retentionKernel())
    {
        setRetentionKernel(k);
    }
    ~KernelGuard() { setRetentionKernel(saved); }
    RetentionKernel saved;
};

constexpr RetentionKernel kAllKernels[] = {
    RetentionKernel::Fast,
    RetentionKernel::FastCached,
    RetentionKernel::Reference,
};

TEST(RetentionKernelSelection, ParseAndFormatRoundTrip)
{
    for (RetentionKernel k : kAllKernels) {
        RetentionKernel parsed = RetentionKernel::Fast;
        EXPECT_TRUE(parseRetentionKernel(toString(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    RetentionKernel out = RetentionKernel::Reference;
    EXPECT_FALSE(parseRetentionKernel("slow", out));
    EXPECT_FALSE(parseRetentionKernel("", out));
    EXPECT_EQ(out, RetentionKernel::Reference); // untouched on failure
}

// --- Threshold exactness against the scalar predicates ---

TEST(ThresholdTransform, DecayBandClassifiesExactlyOutsideGuard)
{
    const RetentionModel m(RetentionConfig::sram6t(), CellRng(0xfeed, 1));
    const struct { double off_ms, temp_c; } cases[] = {
        {20.0, -110.0}, {5.0, -80.0}, {2.0, -40.0}, {0.001, 25.0},
    };
    for (const auto &c : cases) {
        const Seconds off = Seconds::milliseconds(c.off_ms);
        const Temperature t = Temperature::celsius(c.temp_c);
        const auto band = m.decaySurvivalBand(off, t);
        const auto scalar = [&](uint64_t raw) {
            CellParams p{};
            p.retention_z = CellRng::gaussianFromUniform(
                CellRng::uniformFromRaw(raw));
            return m.survivesUnpowered(p, off, t);
        };
        // Dense scan just outside both band edges: classification
        // there must be exact.
        for (uint64_t d = 1; d <= 4096; ++d) {
            if (band.lo >= d)
                ASSERT_FALSE(scalar(band.lo - d))
                    << "off=" << c.off_ms << "ms temp=" << c.temp_c
                    << " raw=" << band.lo - d;
            if (band.hi + d <= CellRng::kRawUniformBuckets &&
                band.hi + d - 1 < CellRng::kRawUniformBuckets)
                ASSERT_TRUE(scalar(band.hi + d - 1))
                    << "off=" << c.off_ms << "ms temp=" << c.temp_c
                    << " raw=" << band.hi + d - 1;
        }
        // Real cells: band classification (scalar inside the band)
        // must agree with the full cellParams()-based evaluation.
        for (uint64_t cell = 0; cell < 20000; ++cell) {
            const bool ref =
                m.survivesUnpowered(m.cellParams(cell), off, t);
            const uint64_t raw = m.rng().rawUniform(
                cell, RetentionModel::ChannelRetention);
            const bool fast = raw >= band.hi ||
                              (raw >= band.lo && scalar(raw));
            ASSERT_EQ(ref, fast) << "cell " << cell;
        }
    }
}

TEST(ThresholdTransform, DroopBandClassifiesExactlyOutsideGuard)
{
    const RetentionModel m(RetentionConfig::sram6t(), CellRng(0xfeed, 2));
    // Including the drv_min/drv_max clamp edges and just inside them.
    for (double mv : {50.0, 51.0, 100.0, 250.0, 400.0, 549.0, 550.0}) {
        const Volt v = Volt::millivolts(mv);
        const auto band = m.droopLossBand(v);
        const auto scalar_survives = [&](uint64_t raw) {
            CellParams p{};
            p.drv = m.drvFromZ(CellRng::gaussianFromUniform(
                CellRng::uniformFromRaw(raw)));
            return m.survivesAtVoltage(p, v);
        };
        for (uint64_t d = 1; d <= 4096; ++d) {
            if (band.lo >= d)
                ASSERT_TRUE(scalar_survives(band.lo - d))
                    << "mv=" << mv << " raw=" << band.lo - d;
            if (band.hi + d - 1 < CellRng::kRawUniformBuckets)
                ASSERT_FALSE(scalar_survives(band.hi + d - 1))
                    << "mv=" << mv << " raw=" << band.hi + d - 1;
        }
        for (uint64_t cell = 0; cell < 20000; ++cell) {
            const bool ref = m.survivesAtVoltage(m.cellParams(cell), v);
            const uint64_t raw =
                m.rng().rawUniform(cell, RetentionModel::ChannelDrv);
            const bool fast = raw < band.lo ||
                              (raw < band.hi && scalar_survives(raw));
            ASSERT_EQ(ref, fast) << "mv=" << mv << " cell " << cell;
        }
    }
}

TEST(ThresholdTransform, UniformToNormalDeviationsStayWithinGuardSlop)
{
    // The guard band assumes the FP-evaluated raw -> z chain never
    // decreases by more than kGuardSlopZ. The risky spots are the
    // seams of Acklam's piecewise approximation and the clampOpen
    // edges; scan densely around each and coarsely across the whole
    // range, tracking the running maximum.
    const double slop = RetentionModel::kGuardSlopZ;
    const double seams[] = {1e-12, 0.02425, 0.5, 1.0 - 0.02425,
                            1.0 - 1e-12};
    for (double s : seams) {
        const uint64_t k0 = CellRng::rawUniformCountBelow(s);
        const uint64_t lo = k0 >= 4096 ? k0 - 4096 : 0;
        const uint64_t hi =
            std::min(k0 + 4096, CellRng::kRawUniformBuckets);
        double running_max = CellRng::gaussianFromUniform(
            CellRng::uniformFromRaw(lo));
        for (uint64_t k = lo + 1; k < hi; ++k) {
            const double z = CellRng::gaussianFromUniform(
                CellRng::uniformFromRaw(k));
            ASSERT_GE(z, running_max - slop) << "seam " << s << " raw "
                                             << k;
            running_max = std::max(running_max, z);
        }
    }
    const uint64_t step = CellRng::kRawUniformBuckets >> 18;
    double running_max = CellRng::gaussianFromUniform(0.0);
    for (uint64_t k = 0; k < CellRng::kRawUniformBuckets; k += step) {
        const double z =
            CellRng::gaussianFromUniform(CellRng::uniformFromRaw(k));
        ASSERT_GE(z, running_max - slop) << "raw " << k;
        running_max = std::max(running_max, z);
    }
}

TEST(ThresholdTransform, MetastableDrawThresholdIsExact)
{
    const RetentionModel m(RetentionConfig::sram6t(), CellRng(0xabc, 3));
    size_t checked = 0;
    for (uint64_t cell = 0; cell < 5000; ++cell) {
        if (!m.cellParams(cell).metastable)
            continue;
        const uint64_t thr =
            CellRng::rawUniformCountBelow(m.metastableTheta(cell));
        for (uint64_t nonce = 0; nonce < 8; ++nonce) {
            const bool fast =
                m.rng().rawUniform(
                    hashCombine(cell, nonce),
                    RetentionModel::ChannelMetastableDraw) < thr;
            ASSERT_EQ(m.metastableDraw(cell, nonce), fast)
                << "cell " << cell << " nonce " << nonce;
        }
        ++checked;
    }
    EXPECT_GT(checked, 1000u); // the scan actually hit metastable cells
}

TEST(FingerprintCache, SharesPlanesAcrossIdenticalDice)
{
    clearFingerprintCache();
    auto firstWake = [](uint64_t chip_seed) {
        SramArray a("cache", 2048, chip_seed, 7);
        a.powerUp(Volt(0.8));
        return a.snapshot();
    };
    const auto base = firstWake(0x0e57);
    auto s = fingerprintCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);

    // Same die again: served from the cache, byte-identical.
    EXPECT_EQ(firstWake(0x0e57), base);
    s = fingerprintCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_GE(s.hits, 1u);
    EXPECT_EQ(s.entries, 1u);

    // Different silicon: a fresh entry, different fingerprint.
    EXPECT_NE(firstWake(0x0e58), base);
    s = fingerprintCacheStats();
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.entries, 2u);

    clearFingerprintCache();
    s = fingerprintCacheStats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
}

/** Restores the process-wide cache byte budget (and empties the cache)
 * when a test exits, so capacity experiments cannot leak. */
class CacheCapacityGuard
{
public:
    CacheCapacityGuard() : saved_(fingerprintCacheStats().capacity)
    {
        clearFingerprintCache();
    }
    ~CacheCapacityGuard()
    {
        setFingerprintCacheCapacity(saved_);
        clearFingerprintCache();
    }

private:
    size_t saved_;
};

TEST(FingerprintCache, ByteBudgetEvictsLeastRecentlyUsed)
{
    CacheCapacityGuard guard;
    auto wake = [](uint64_t chip_seed) {
        SramArray a("budget", 2048, chip_seed, 7);
        a.powerUp(Volt(0.8));
        return a.snapshot();
    };
    // Measure what one die costs, then budget for roughly two.
    wake(0xb001);
    const size_t per_entry = fingerprintCacheStats().bytes;
    ASSERT_GT(per_entry, 0u);
    setFingerprintCacheCapacity(per_entry * 5 / 2);

    wake(0xb002);
    wake(0xb003); // over budget: the LRU entry (0xb001) must go
    auto s = fingerprintCacheStats();
    EXPECT_GE(s.evictions, 1u);
    EXPECT_LE(s.entries, 2u);
    EXPECT_LE(s.bytes, s.capacity);

    // The survivors are still hits; the evicted die rebuilds, and the
    // rebuilt planes resolve to the same bytes as before eviction.
    const auto before = s;
    wake(0xb003);
    EXPECT_EQ(fingerprintCacheStats().hits, before.hits + 1);
    const auto first = wake(0xb001);
    EXPECT_EQ(fingerprintCacheStats().misses, before.misses + 1);
    EXPECT_EQ(wake(0xb001), first);
}

TEST(FingerprintCache, OversizeBuildsBypassTheCache)
{
    CacheCapacityGuard guard;
    setFingerprintCacheCapacity(0); // everything is oversize
    auto wake = [](uint64_t chip_seed) {
        SramArray a("bypass", 2048, chip_seed, 7);
        a.powerUp(Volt(0.8));
        return a.snapshot();
    };
    const auto base = wake(0x0b1d);
    auto s = fingerprintCacheStats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
    EXPECT_GE(s.oversize, 1u);

    // Uncached wakes are still deterministic.
    EXPECT_EQ(wake(0x0b1d), base);
    EXPECT_EQ(fingerprintCacheStats().entries, 0u);
}

// --- Golden equivalence: byte-identical scenarios ---

/** One recorded step of a scenario: the full plane state and the loss
 * bookkeeping, all of which must match across kernels. */
struct ScenarioStep
{
    std::vector<uint8_t> snapshot;
    uint64_t cells_lost;
    std::vector<uint8_t> loss_mask;

    bool operator==(const ScenarioStep &other) const = default;
};

/** A partial-decay off-time for @p model at @p temp (survival strictly
 * between 5% and 95%), found by scanning the decay slope so the
 * scenario works for any cell technology. */
Seconds
partialDecayOff(const RetentionModel &model, Temperature temp)
{
    for (double secs = 1e-9; secs < 1e8; secs *= 1.3) {
        const double p = model.expectedSurvival(Seconds(secs), temp);
        if (p > 0.05 && p < 0.95)
            return Seconds(secs);
    }
    return Seconds(0.0);
}

/**
 * One eventful array life under the current kernel; returns every
 * snapshot, loss count, and loss mask along the way. Odd size
 * exercises the word-kernel tail; works for both cell technologies
 * (decay points are found on the config's own slope).
 */
std::vector<ScenarioStep>
arrayScenario(uint64_t seed, const RetentionConfig &config)
{
    std::vector<ScenarioStep> log;
    auto record = [&](const MemoryArray &a) {
        log.push_back(
            {a.snapshot(), a.lastCellsLost(), a.lastLossMask()});
    };
    MemoryArray a("golden", 1003, config, seed, 7);
    const RetentionModel model(config, CellRng(seed, 7));
    const Temperature cold = Temperature::celsius(-110);
    const Temperature warm = Temperature::celsius(85);
    a.powerUp(Volt(0.8)); // first resolve: full fingerprint
    record(a);
    a.fill(0x5A);
    a.powerDown();
    a.powerUp(Volt(0.8), partialDecayOff(model, cold), cold);
    record(a);
    a.droopTo(Volt::millivolts(300)); // partial DRV loss
    record(a);
    a.retainAt(Volt::millivolts(220)); // droop + retain
    a.resumePowered(Volt(0.8));
    record(a);
    a.powerDown();
    a.powerUp(Volt(0.8), partialDecayOff(model, warm),
              warm); // different decay point
    record(a);
    a.powerDown();
    a.powerUp(Volt(0.8), Seconds(1e9),
              Temperature::celsius(85)); // total loss: resolve-all
    record(a);
    return log;
}

void
expectScenarioMatchesReference(const RetentionConfig &config,
                               const char *config_name)
{
    for (uint64_t seed : {1ull, 2ull, 0x5eedull}) {
        KernelGuard ref(RetentionKernel::Reference);
        const auto expected = arrayScenario(seed, config);
        for (RetentionKernel k :
             {RetentionKernel::Fast, RetentionKernel::FastCached}) {
            KernelGuard guard(k);
            const auto got = arrayScenario(seed, config);
            ASSERT_EQ(got.size(), expected.size());
            for (size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].cells_lost, expected[i].cells_lost)
                    << config_name << " " << toString(k)
                    << " lastCellsLost, step " << i;
                ASSERT_EQ(got[i].loss_mask, expected[i].loss_mask)
                    << config_name << " " << toString(k)
                    << " loss mask, step " << i;
                ASSERT_EQ(got[i].snapshot, expected[i].snapshot)
                    << config_name << " " << toString(k)
                    << " snapshot bytes, step " << i;
            }
        }
    }
}

TEST(GoldenEquivalence, SramTransitionsAreByteIdenticalAcrossKernels)
{
    expectScenarioMatchesReference(RetentionConfig::sram6t(), "sram6t");
}

TEST(GoldenEquivalence, DramTransitionsAreByteIdenticalAcrossKernels)
{
    expectScenarioMatchesReference(RetentionConfig::dram(), "dram");
}

TEST(GoldenEquivalence, AgedArraysForceTheReferencePathAndStillMatch)
{
    // The word kernels never consult the imprint planes, so an aged
    // array silently routed through them would resolve lost cells
    // without the imprint bias and diverge. Byte equality across
    // kernels therefore proves age() pins the array to the reference
    // path regardless of the selected kernel.
    auto agedScenario = [](RetentionKernel k) {
        KernelGuard guard(k);
        SramArray a("aged", 797, 0x11, 5);
        a.powerUp(Volt(0.8));
        a.fill(0xF0);
        a.age(10.0); // a decade of imprint: weight 1/3 toward 0xF0
        a.powerDown();
        a.powerUp(Volt(0.8), Seconds::milliseconds(20),
                  Temperature::celsius(-110));
        ScenarioStep decay{a.snapshot(), a.lastCellsLost(),
                           a.lastLossMask()};
        a.droopTo(Volt::millivolts(300));
        ScenarioStep droop{a.snapshot(), a.lastCellsLost(),
                           a.lastLossMask()};
        return std::make_pair(decay, droop);
    };
    const auto expected = agedScenario(RetentionKernel::Reference);
    for (RetentionKernel k :
         {RetentionKernel::Fast, RetentionKernel::FastCached}) {
        const auto got = agedScenario(k);
        ASSERT_EQ(got.first, expected.first)
            << toString(k) << " aged decay step diverges";
        ASSERT_EQ(got.second, expected.second)
            << toString(k) << " aged droop step diverges";
    }
}

/** Full Volt Boot + cold boot attack pair on pi4; returns both dumps. */
std::pair<std::vector<uint8_t>, std::vector<uint8_t>>
attackScenario()
{
    std::pair<std::vector<uint8_t>, std::vector<uint8_t>> dumps;
    {
        Soc soc(socConfigFor("pi4"));
        soc.powerOn();
        BareMetalRunner runner(soc);
        const uint64_t base = soc.config().dram_base + 0x40000;
        runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
        VoltBootAttack attack(soc, AttackConfig{});
        AttackOutcome out = attack.execute();
        EXPECT_TRUE(out.rebooted_into_attacker_code)
            << out.failure_reason;
        dumps.first = attack.dumpL1(0, L1Ram::DData).bytes();
    }
    {
        Soc soc(socConfigFor("pi4"));
        soc.powerOn();
        BareMetalRunner runner(soc);
        const uint64_t base = soc.config().dram_base + 0x40000;
        runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
        ColdBootAttack attack(soc, Temperature::celsius(-110),
                              Seconds::milliseconds(20));
        EXPECT_TRUE(attack.powerCycleAndBoot());
        dumps.second = attack.dumpL1(0, L1Ram::DData).bytes();
    }
    return dumps;
}

TEST(GoldenEquivalence, AttackAndColdBootDumpsAreByteIdentical)
{
    KernelGuard ref(RetentionKernel::Reference);
    const auto expected = attackScenario();
    for (RetentionKernel k :
         {RetentionKernel::Fast, RetentionKernel::FastCached}) {
        KernelGuard guard(k);
        const auto got = attackScenario();
        ASSERT_EQ(got.first, expected.first)
            << toString(k) << " voltboot dump differs";
        ASSERT_EQ(got.second, expected.second)
            << toString(k) << " coldboot dump differs";
    }
}

std::string
readFile(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(GoldenEquivalence, CampaignJsonCsvAndTracesAreByteIdentical)
{
    SweepGrid grid;
    grid.boards = {"pi4"};
    grid.targets = {TargetRam::DCache};
    grid.attacks = {AttackKind::VoltBoot, AttackKind::ColdBoot};
    grid.temps_c = {25.0, -80.0};
    grid.offs_ms = {5.0};
    grid.seed_count = 1;

    const auto trace_root =
        std::filesystem::temp_directory_path() / "voltboot_golden_traces";
    std::filesystem::remove_all(trace_root);

    std::string ref_json, ref_csv;
    std::vector<std::string> ref_traces;
    for (RetentionKernel k : kAllKernels) {
        KernelGuard guard(k);
        CampaignConfig cfg;
        cfg.jobs = 2;
        cfg.seed = 0xbe;
        const auto dir = trace_root / toString(k);
        cfg.trace_dir = dir.string();
        const CampaignResult result = Campaign(grid, cfg).run();
        const std::string json = result.toJson();
        const std::string csv = result.toCsv();
        std::vector<std::string> traces;
        for (uint64_t i = 0; i < grid.size(); ++i) {
            char name[32];
            std::snprintf(name, sizeof(name), "trial_%06llu.jsonl",
                          static_cast<unsigned long long>(i));
            traces.push_back(readFile(dir / name));
            EXPECT_FALSE(traces.back().empty()) << name;
        }
        if (ref_json.empty()) {
            ref_json = json;
            ref_csv = csv;
            ref_traces = traces;
        } else {
            EXPECT_EQ(json, ref_json) << toString(k);
            EXPECT_EQ(csv, ref_csv) << toString(k);
            ASSERT_EQ(traces.size(), ref_traces.size());
            for (size_t i = 0; i < traces.size(); ++i)
                EXPECT_EQ(traces[i], ref_traces[i])
                    << toString(k) << " trial trace " << i;
        }
    }
    std::filesystem::remove_all(trace_root);
}

// --- Calibration anchors through the fast kernel ---

/** Empirical survival of a 64 KiB array under the current kernel,
 * measured with the complement-of-fingerprint trick. */
double
measuredSurvival(double off_ms, double temp_c)
{
    SramArray a("anchor", 65536, 0x1234, 20);
    a.powerUp(Volt(0.8));
    std::vector<uint8_t> fp = a.snapshot();
    for (size_t i = 0; i < fp.size(); ++i)
        a.writeByte(i, static_cast<uint8_t>(~fp[i]));
    a.powerDown();
    a.powerUp(Volt(0.8), Seconds::milliseconds(off_ms),
              Temperature::celsius(temp_c));
    size_t retained = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        retained += std::popcount(
            static_cast<uint8_t>(a.readByte(i) ^ fp[i]));
    return static_cast<double>(retained) / a.sizeBits();
}

class FastKernelAnchor
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(FastKernelAnchor, EmpiricalSurvivalTracksExpectedSurvival)
{
    const auto [off_ms, temp_c] = GetParam();
    KernelGuard guard(RetentionKernel::Fast);
    const double measured = measuredSurvival(off_ms, temp_c);

    const RetentionModel model(RetentionConfig::sram6t(),
                               CellRng(0x1234, 20));
    const double p = model.expectedSurvival(
        Seconds::milliseconds(off_ms), Temperature::celsius(temp_c));
    // Metastable cells that lost state re-roll; a fraction land back on
    // the stored complement (same correction as SurvivalMonteCarlo).
    const double meta = model.config().metastable_fraction;
    const double expected =
        p + (1.0 - p) * meta * model.expectedMetastableFlipRate();
    EXPECT_NEAR(measured, expected, 0.02);

    // The paper's anchor points survive the threshold refactor.
    if (off_ms == 20.0 && temp_c == -110.0)
        EXPECT_NEAR(p, 0.80, 0.06);
    if (off_ms == 2.0 && temp_c == -40.0)
        EXPECT_LT(p, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    PaperAnchors, FastKernelAnchor,
    ::testing::Values(std::make_pair(20.0, -110.0),
                      std::make_pair(2.0, -40.0),
                      std::make_pair(5.0, -80.0)));

} // namespace
} // namespace voltboot

/**
 * @file
 * Observability-layer tests: Arg/JSON rendering, sink installation and
 * nesting, event ordering, JSONL and Chrome trace-event serialization,
 * the off-path being a no-op, metrics snapshot determinism, and the
 * big determinism contract — a traced attack emits the documented
 * events and a traced campaign produces byte-identical per-trial files
 * at any job count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/sweep_grid.hh"
#include "campaign/trial_runner.hh"
#include "core/attack.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

using namespace voltboot;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

// --- JSON primitives -------------------------------------------------

TEST(TraceJson, NumberIsShortestRoundTrip)
{
    EXPECT_EQ(trace::jsonNumber(0.5), "0.5");
    EXPECT_EQ(trace::jsonNumber(0.0), "0");
    EXPECT_EQ(trace::jsonNumber(-3.25), "-3.25");
}

TEST(TraceJson, NonFiniteRendersNull)
{
    EXPECT_EQ(trace::jsonNumber(std::nan("")), "null");
    EXPECT_EQ(trace::jsonNumber(INFINITY), "null");
}

TEST(TraceJson, QuoteEscapes)
{
    EXPECT_EQ(trace::jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(trace::jsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

TEST(TraceJson, ArgRendersByType)
{
    EXPECT_EQ(trace::Arg("k", "text").json, "\"text\"");
    EXPECT_EQ(trace::Arg("k", std::string("s")).json, "\"s\"");
    EXPECT_EQ(trace::Arg("k", true).json, "true");
    EXPECT_EQ(trace::Arg("k", false).json, "false");
    EXPECT_EQ(trace::Arg("k", 42).json, "42");
    EXPECT_EQ(trace::Arg("k", uint64_t{7}).json, "7");
    EXPECT_EQ(trace::Arg("k", 1.25).json, "1.25");
}

// --- off path --------------------------------------------------------

TEST(TraceOff, DisabledByDefaultAndEmitIsNoOp)
{
    EXPECT_FALSE(trace::enabled());
    trace::emit({});                   // must not crash
    trace::instant("core", "nothing"); // must not crash
    trace::Span span("core", "inert");
    span.arg({"k", 1});
    span.end();
    EXPECT_EQ(trace::metricsRegistry(), nullptr);
}

// --- scopes, ordering, spans -----------------------------------------

TEST(TraceScope, InstallsResetsClockAndRestores)
{
    trace::MemoryTraceSink outer;
    trace::MemoryTraceSink inner;
    {
        trace::Scope a(outer);
        EXPECT_TRUE(trace::enabled());
        trace::setSimTime(Seconds::milliseconds(5));
        {
            trace::Scope b(inner);
            // A new scope starts its own timeline.
            EXPECT_EQ(trace::simTime().seconds(), 0.0);
            trace::instant("core", "in_inner");
        }
        // The outer clock and sink come back.
        EXPECT_EQ(trace::simTime().seconds(), 0.005);
        trace::instant("core", "in_outer");
    }
    EXPECT_FALSE(trace::enabled());
    ASSERT_EQ(inner.events().size(), 1u);
    EXPECT_EQ(inner.events()[0].name, "in_inner");
    ASSERT_EQ(outer.events().size(), 1u);
    EXPECT_EQ(outer.events()[0].name, "in_outer");
    EXPECT_EQ(outer.events()[0].ts.seconds(), 0.005);
}

TEST(TraceScope, EventsArriveInEmissionOrder)
{
    trace::MemoryTraceSink sink;
    trace::Scope scope(sink);
    for (int i = 0; i < 5; ++i) {
        trace::setSimTime(Seconds::milliseconds(i));
        trace::instant("core", "e" + std::to_string(i));
    }
    ASSERT_EQ(sink.events().size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(sink.events()[i].name, "e" + std::to_string(i));
        EXPECT_DOUBLE_EQ(sink.events()[i].ts.seconds(), i * 1e-3);
    }
}

TEST(TraceSpan, CapturesStartDurationAndArgs)
{
    trace::MemoryTraceSink sink;
    trace::Scope scope(sink);
    trace::setSimTime(Seconds::milliseconds(1));
    {
        trace::Span span("core", "work");
        span.arg({"bytes", 512});
        trace::setSimTime(Seconds::milliseconds(3));
    }
    ASSERT_EQ(sink.events().size(), 1u);
    const trace::TraceEvent &e = sink.events()[0];
    EXPECT_EQ(e.phase, trace::Phase::Complete);
    EXPECT_DOUBLE_EQ(e.ts.seconds(), 1e-3);
    EXPECT_DOUBLE_EQ(e.dur.seconds(), 2e-3);
    ASSERT_EQ(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].key, "bytes");
    EXPECT_EQ(e.args[0].json, "512");
}

TEST(TraceSpan, EndIsIdempotent)
{
    trace::MemoryTraceSink sink;
    trace::Scope scope(sink);
    trace::Span span("core", "once");
    span.end();
    span.end();
    EXPECT_EQ(sink.events().size(), 1u);
}

// --- serializers -----------------------------------------------------

TEST(TraceSerialize, JsonlLineFormat)
{
    trace::TraceEvent e;
    e.phase = trace::Phase::Instant;
    e.category = "power";
    e.name = "probe_attach";
    e.ts = Seconds::milliseconds(2);
    e.args.push_back({"domain", "VDD_CORE"});
    e.args.push_back({"voltage_v", 0.8});
    EXPECT_EQ(trace::toJsonlLine(e),
              "{\"ts_us\": 2000, \"cat\": \"power\", \"ph\": \"i\", "
              "\"name\": \"probe_attach\", \"args\": "
              "{\"domain\": \"VDD_CORE\", \"voltage_v\": 0.8}}");
}

TEST(TraceSerialize, JsonlDocumentHasOneLinePerEvent)
{
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        trace::instant("core", "a");
        trace::instant("core", "b");
        trace::instant("core", "c");
    }
    const std::string doc = trace::toJsonl(sink.events());
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '\n'), 3);
    EXPECT_EQ(doc.back(), '\n');
}

TEST(TraceSerialize, ChromeTraceFormat)
{
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        trace::instant("power", "probe_attach");
        trace::Span span("core", "attack.step3_power_cycle");
        trace::setSimTime(Seconds::milliseconds(500));
    }
    const std::string doc = trace::toChromeTrace(sink.events());
    EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"s\": \"p\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\": 500000"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"pid\": 0"), std::string::npos);
}

TEST(TraceSerialize, JsonlFileSinkMatchesSerializer)
{
    const std::string path =
        (std::filesystem::path(testing::TempDir()) / "trace_sink.jsonl")
            .string();
    trace::MemoryTraceSink memory;
    {
        trace::JsonlFileSink file(path);
        trace::Scope scope(file);
        for (const trace::TraceEvent &e :
             {trace::TraceEvent{trace::Phase::Instant, "sram",
                                "sram_state", Seconds::milliseconds(1),
                                Seconds{0.0},
                                {{"array", "l1d"}, {"supply_v", 0.0}}},
              trace::TraceEvent{trace::Phase::Instant, "power",
                                "domain_power_up",
                                Seconds::milliseconds(2), Seconds{0.0},
                                {}}}) {
            memory.record(e);
            trace::emit(e);
        }
    }
    EXPECT_EQ(readFile(path), trace::toJsonl(memory.events()));
}

// --- metrics ---------------------------------------------------------

TEST(Metrics, CountersGaugesHistograms)
{
    trace::Metrics m;
    m.add("runs");
    m.add("runs", 2.0);
    m.set("jobs", 4.0);
    m.set("jobs", 2.0); // last write wins
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0})
        m.observe("wall_s", v);

    const trace::MetricsSnapshot s = m.snapshot();
    EXPECT_DOUBLE_EQ(s.counters.at("runs"), 3.0);
    EXPECT_DOUBLE_EQ(s.gauges.at("jobs"), 2.0);
    const trace::HistogramSummary &h = s.histograms.at("wall_s");
    EXPECT_EQ(h.count, 5u);
    EXPECT_DOUBLE_EQ(h.mean, 3.0);
    EXPECT_DOUBLE_EQ(h.min, 1.0);
    EXPECT_DOUBLE_EQ(h.max, 5.0);
    EXPECT_DOUBLE_EQ(h.p50, 3.0);
}

TEST(Metrics, SnapshotIsObservationOrderIndependent)
{
    trace::Metrics a, b;
    const std::vector<double> samples = {0.25, 4.0, 1.5, 0.75, 2.0};
    for (double v : samples)
        a.observe("h", v);
    for (auto it = samples.rbegin(); it != samples.rend(); ++it)
        b.observe("h", *it);
    a.add("c", 1.0);
    a.add("c", 2.0);
    b.add("c", 2.0);
    b.add("c", 1.0);
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(Metrics, EmptySnapshotReportsEmpty)
{
    trace::Metrics m;
    EXPECT_TRUE(m.snapshot().empty());
    m.add("c");
    EXPECT_FALSE(m.snapshot().empty());
}

TEST(Metrics, ScopeInstallsAndRestores)
{
    trace::Metrics m;
    EXPECT_EQ(trace::metricsRegistry(), nullptr);
    {
        trace::MetricsScope scope(&m);
        EXPECT_EQ(trace::metricsRegistry(), &m);
    }
    EXPECT_EQ(trace::metricsRegistry(), nullptr);
}

// --- the attack stack emits the documented events --------------------

TEST(TraceIntegration, AttackRunEmitsLayerEvents)
{
    trace::MemoryTraceSink sink;
    trace::Metrics metrics;
    {
        trace::Scope scope(sink);
        trace::MetricsScope metrics_scope(&metrics);
        Soc soc(socConfigFor("pi4"));
        soc.powerOn();
        VoltBootAttack attack(soc);
        const AttackOutcome out = attack.execute();
        ASSERT_TRUE(out.rebooted_into_attacker_code)
            << out.failure_reason;
        attack.dumpL1(0, L1Ram::DData);
    }

    auto has = [&](const char *cat, const std::string &name) {
        for (const trace::TraceEvent &e : sink.events())
            if (std::string(e.category) == cat && e.name == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("power", "probe_attach"));
    EXPECT_TRUE(has("power", "domain_power_down"));
    EXPECT_TRUE(has("power", "domain_power_up"));
    EXPECT_TRUE(has("sram", "sram_state"));
    EXPECT_TRUE(has("soc", "boot_rom"));
    EXPECT_TRUE(has("core", "attack.steps12_probe"));
    EXPECT_TRUE(has("core", "attack.step3_power_cycle"));
    EXPECT_TRUE(has("core", "attack.step4_extract"));

    // Timestamps never run backwards within a category's instants.
    double last = 0.0;
    for (const trace::TraceEvent &e : sink.events()) {
        if (e.phase != trace::Phase::Instant)
            continue;
        EXPECT_GE(e.ts.seconds(), last);
        last = e.ts.seconds();
    }

    // Wall-clock step costs landed in the metrics registry, not the
    // trace.
    const trace::MetricsSnapshot s = metrics.snapshot();
    EXPECT_EQ(s.histograms.count("core.wall_s.attack.step3_power_cycle"),
              1u);

    // The same events load as a Chrome trace document.
    const std::string chrome = trace::toChromeTrace(sink.events());
    EXPECT_NE(chrome.find("\"traceEvents\": ["), std::string::npos);
}

// --- campaign traces are schedule-independent ------------------------

/** Cheap deterministic runner that also emits a per-trial trace; the
 * event content is a pure function of (seed, index), like runTrial. */
TrialRecord
tracedFakeTrial(const TrialSpec &spec, uint64_t seed)
{
    Rng rng(deriveTrialSeed(seed, spec.index));
    TrialRecord rec;
    rec.spec = spec;
    rec.chip_seed = deriveChipSeed(seed, spec.seed_index);
    rec.status = TrialStatus::Ok;
    rec.booted = true;
    rec.accuracy = 1.0 - rng.uniform() * 0.5;

    trace::setSimTime(Seconds::milliseconds(1));
    trace::instant("power", "domain_power_down",
                   {{"domain", "VDD_CORE"}});
    trace::setSimTime(Seconds::milliseconds(1 + spec.off_ms));
    trace::instant("sram", "sram_decay",
                   {{"cells_flipped", rng.uniform()}});
    return rec;
}

TEST(TraceIntegration, CampaignTracesAreByteIdenticalAcrossJobs)
{
    const std::string spec =
        "board=pi4;attack=voltboot;off-ms=5,50;temp=25,-40;seeds=2";

    auto runWithJobs = [&](unsigned jobs) {
        const std::string dir =
            (std::filesystem::path(testing::TempDir()) /
             ("trace_jobs_" + std::to_string(jobs)))
                .string();
        CampaignConfig cfg;
        cfg.jobs = jobs;
        cfg.runner = tracedFakeTrial;
        cfg.trace_dir = dir;
        Campaign campaign(SweepGrid::parse(spec), std::move(cfg));
        campaign.run();
        return dir;
    };

    const std::string dir1 = runWithJobs(1);
    const std::string dir4 = runWithJobs(4);

    const uint64_t trials = SweepGrid::parse(spec).size();
    ASSERT_GT(trials, 1u);
    for (uint64_t i = 0; i < trials; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "trial_%06llu.jsonl",
                      static_cast<unsigned long long>(i));
        const std::string a =
            readFile((std::filesystem::path(dir1) / name).string());
        const std::string b =
            readFile((std::filesystem::path(dir4) / name).string());
        EXPECT_EQ(a, b) << "trial " << i
                        << " trace differs across job counts";
        // Every trial file carries its runner events plus the engine's
        // closing campaign/trial span.
        EXPECT_NE(a.find("\"cat\": \"campaign\""), std::string::npos);
        EXPECT_NE(a.find("\"name\": \"trial\""), std::string::npos);
        EXPECT_NE(a.find("domain_power_down"), std::string::npos);
    }
}

TEST(TraceIntegration, CampaignMetricsLandInResult)
{
    CampaignConfig cfg;
    cfg.jobs = 2;
    cfg.runner = tracedFakeTrial;
    Campaign campaign(
        SweepGrid::parse("board=pi4;attack=voltboot;seeds=6"),
        std::move(cfg));
    const CampaignResult result = campaign.run();

    EXPECT_FALSE(result.metrics.empty());
    EXPECT_GE(result.metrics.counters.at("campaign.queue_grabs"), 1.0);
    EXPECT_DOUBLE_EQ(result.metrics.gauges.at("campaign.jobs"), 2.0);
    const trace::HistogramSummary &h =
        result.metrics.histograms.at("campaign.trial_wall_s");
    EXPECT_EQ(h.count, result.records.size());

    // ...but only in the opt-in timing section of the JSON.
    EXPECT_EQ(result.toJson(false).find("metrics"), std::string::npos);
    EXPECT_NE(result.toJson(true).find("\"metrics\""),
              std::string::npos);
}

} // namespace

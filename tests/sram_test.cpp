/**
 * @file
 * Tests for the SRAM/DRAM retention physics and memory arrays: DRV
 * distribution, Arrhenius temperature scaling, the literature anchor
 * points, power-state transitions, and the power-up fingerprint.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sim/logging.hh"
#include "sram/memory_array.hh"
#include "sram/retention_model.hh"

namespace voltboot
{
namespace
{

RetentionModel
makeModel(const RetentionConfig &cfg = RetentionConfig::sram6t(),
          uint64_t seed = 0xfeed, uint64_t array = 1)
{
    return RetentionModel(cfg, CellRng(seed, array));
}

TEST(RetentionModel, DrvDistributionMoments)
{
    const RetentionModel m = makeModel();
    const int n = 50000;
    double sum = 0, sq = 0;
    for (int cell = 0; cell < n; ++cell) {
        const double drv = m.cellParams(cell).drv.volts();
        sum += drv;
        sq += drv * drv;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.250, 0.005);
    EXPECT_NEAR(std::sqrt(var), 0.035, 0.005);
}

TEST(RetentionModel, DrvRespectsPhysicalBounds)
{
    const RetentionModel m = makeModel();
    for (int cell = 0; cell < 100000; ++cell) {
        const Volt drv = m.cellParams(cell).drv;
        ASSERT_GE(drv.volts(), 0.05);
        ASSERT_LE(drv.volts(), 0.55);
    }
}

TEST(RetentionModel, PowerUpFingerprintHalfOnes)
{
    const RetentionModel m = makeModel();
    int ones = 0;
    const int n = 50000;
    for (int cell = 0; cell < n; ++cell)
        ones += m.cellParams(cell).power_up_bit;
    // "SRAMs boot up into random states where approximately 50% of the
    // bits are 1s."
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

TEST(RetentionModel, MetastableFractionMatchesConfig)
{
    const RetentionModel m = makeModel();
    int meta = 0;
    const int n = 50000;
    for (int cell = 0; cell < n; ++cell)
        meta += m.cellParams(cell).metastable;
    EXPECT_NEAR(static_cast<double>(meta) / n,
                m.config().metastable_fraction, 0.01);
}

TEST(RetentionModel, SurvivalAtVoltageIsDrvThreshold)
{
    const RetentionModel m = makeModel();
    const CellParams p = m.cellParams(123);
    EXPECT_TRUE(m.survivesAtVoltage(p, p.drv));
    EXPECT_TRUE(m.survivesAtVoltage(p, p.drv + Volt(0.01)));
    EXPECT_FALSE(m.survivesAtVoltage(p, p.drv - Volt(0.01)));
}

TEST(RetentionModel, RetentionTimeShrinksWithTemperature)
{
    const RetentionModel m = makeModel();
    const CellParams p = m.cellParams(7);
    const Seconds cold = m.retentionTime(p, Temperature::celsius(-110));
    const Seconds cool = m.retentionTime(p, Temperature::celsius(-40));
    const Seconds room = m.retentionTime(p, Temperature::celsius(25));
    EXPECT_GT(cold, cool);
    EXPECT_GT(cool, room);
}

TEST(RetentionModel, ExpectedSurvivalMonotoneInOffTime)
{
    const RetentionModel m = makeModel();
    const Temperature t = Temperature::celsius(-60);
    double prev = 1.0;
    for (double ms : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
        const double s = m.expectedSurvival(Seconds::milliseconds(ms), t);
        EXPECT_LE(s, prev);
        prev = s;
    }
}

// --- The literature anchor points the model is calibrated to ---

TEST(RetentionCalibration, SramRetains80PercentAtMinus110C20ms)
{
    // Anagnostopoulos et al.: ~80% retention after 20 ms at -110 degC.
    const RetentionModel m = makeModel();
    const double s = m.expectedSurvival(Seconds::milliseconds(20),
                                        Temperature::celsius(-110));
    EXPECT_NEAR(s, 0.80, 0.06);
}

TEST(RetentionCalibration, SramRetainsNothingAtMinus40C)
{
    // The paper's Table 1: ~zero retention at the SoC's -40 degC limit
    // for a multi-millisecond power cycle.
    const RetentionModel m = makeModel();
    const double s = m.expectedSurvival(Seconds::milliseconds(2),
                                        Temperature::celsius(-40));
    EXPECT_LT(s, 1e-3);
}

TEST(RetentionCalibration, SramDiesInMicrosecondsAtRoomTemperature)
{
    const RetentionModel m = makeModel();
    const double s_1us = m.expectedSurvival(Seconds::microseconds(1),
                                            Temperature::celsius(25));
    const double s_1ms = m.expectedSurvival(Seconds::milliseconds(1),
                                            Temperature::celsius(25));
    EXPECT_GT(s_1us, 0.3); // a microsecond glitch may be survivable
    EXPECT_LT(s_1ms, 1e-6); // a millisecond is certain death
}

TEST(RetentionCalibration, DramVastlyOutlivesSram)
{
    const RetentionModel sram = makeModel(RetentionConfig::sram6t());
    const RetentionModel dram = makeModel(RetentionConfig::dram());
    const Temperature room = Temperature::celsius(25);
    const Seconds refresh = Seconds::milliseconds(64);
    // A DRAM cell easily outlasts a refresh interval; SRAM never does.
    EXPECT_GT(dram.expectedSurvival(refresh, room), 0.99);
    EXPECT_LT(sram.expectedSurvival(refresh, room), 1e-9);
}

TEST(RetentionCalibration, ColdDramHoldsForCapturableWindows)
{
    // Halderman et al.: at -50 degC DRAM survives transplantation
    // windows of tens of seconds with little decay.
    const RetentionModel dram = makeModel(RetentionConfig::dram());
    const double s = dram.expectedSurvival(Seconds(10.0),
                                           Temperature::celsius(-50));
    EXPECT_GT(s, 0.95);
}

// --- MemoryArray state machine ---

TEST(MemoryArray, FirstPowerUpGivesFingerprint)
{
    SramArray a("t", 4096, 0x5eed, 1);
    a.powerUp(Volt(0.8));
    // Roughly half the bits should be set.
    size_t ones = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        ones += std::popcount(a.readByte(i));
    const double density = static_cast<double>(ones) / a.sizeBits();
    EXPECT_NEAR(density, 0.5, 0.03);
}

TEST(MemoryArray, FingerprintIsStableAcrossColdCycles)
{
    SramArray a("t", 2048, 0x5eed, 2);
    a.powerUp(Volt(0.8));
    const std::vector<uint8_t> first = a.snapshot();
    a.powerDown();
    a.powerUp(Volt(0.8), Seconds(100.0), Temperature::celsius(25));
    const std::vector<uint8_t> second = a.snapshot();
    // Only metastable cells may differ; each flips with probability 1/2,
    // so the expected fractional HD is metastable_fraction / 2 ~ 0.09 —
    // the paper's Table 1 reports ~0.10 for this comparison.
    size_t diff_bits = 0;
    for (size_t i = 0; i < first.size(); ++i)
        diff_bits += std::popcount(
            static_cast<uint8_t>(first[i] ^ second[i]));
    const double frac = static_cast<double>(diff_bits) / (first.size() * 8);
    EXPECT_LT(frac, 0.13);
    EXPECT_GT(frac, 0.05); // metastable cells do flip
}

TEST(MemoryArray, ReadWriteRoundTrip)
{
    SramArray a("t", 256, 1, 3);
    a.powerUp(Volt(0.8));
    a.writeByte(10, 0xab);
    EXPECT_EQ(a.readByte(10), 0xab);
    a.writeWord64(16, 0x1122334455667788ull);
    EXPECT_EQ(a.readWord64(16), 0x1122334455667788ull);
}

TEST(MemoryArray, BlockReadWrite)
{
    SramArray a("t", 256, 1, 4);
    a.powerUp(Volt(0.8));
    std::vector<uint8_t> data = {1, 2, 3, 4, 5};
    a.write(100, data);
    std::vector<uint8_t> back(5);
    a.read(100, back);
    EXPECT_EQ(back, data);
}

TEST(MemoryArray, AccessWhileOffPanics)
{
    SramArray a("t", 64, 1, 5);
    EXPECT_THROW(a.readByte(0), PanicError);
    EXPECT_THROW(a.writeByte(0, 1), PanicError);
    EXPECT_THROW(a.snapshot(), PanicError);
}

TEST(MemoryArray, LongOffTimeLosesEverything)
{
    SramArray a("t", 1024, 2, 6);
    a.powerUp(Volt(0.8));
    a.fill(0xA5);
    a.powerDown();
    a.powerUp(Volt(0.8), Seconds(1.0), Temperature::celsius(25));
    // Contents must be fingerprint-like, not the pattern.
    size_t matches = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        matches += a.readByte(i) == 0xA5;
    EXPECT_LT(static_cast<double>(matches) / a.sizeBytes(), 0.05);
}

TEST(MemoryArray, RetainedArraySurvivesIndefinitely)
{
    SramArray a("t", 1024, 3, 7);
    a.powerUp(Volt(0.8));
    a.fill(0x3C);
    a.retainAt(Volt(0.8)); // held well above every DRV
    // "The memory domain stays in this retention state indefinitely."
    a.resumePowered(Volt(0.8));
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        ASSERT_EQ(a.readByte(i), 0x3C) << "byte " << i;
}

TEST(MemoryArray, RetentionBelowDrvLosesMarginalCells)
{
    SramArray a("t", 8192, 4, 8);
    a.powerUp(Volt(0.8));
    a.fill(0xFF);
    // Hold at 250 mV = the DRV mean: about half the cells must flip to
    // their power-up state.
    a.retainAt(Volt::millivolts(250));
    a.resumePowered(Volt(0.8));
    size_t ones = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        ones += std::popcount(a.readByte(i));
    const double density = static_cast<double>(ones) / a.sizeBits();
    // Survivors stay 1; the ~50% that lost state go to a ~50/50
    // fingerprint: expected density ~0.75.
    EXPECT_NEAR(density, 0.75, 0.03);
}

TEST(MemoryArray, DroopAboveMaxDrvIsHarmless)
{
    SramArray a("t", 1024, 5, 9);
    a.powerUp(Volt(0.8));
    a.fill(0x77);
    a.droopTo(Volt(0.60)); // above drv_max = 0.55
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        ASSERT_EQ(a.readByte(i), 0x77);
}

TEST(MemoryArray, DroopToGroundLosesEverything)
{
    SramArray a("t", 1024, 6, 10);
    a.powerUp(Volt(0.8));
    a.fill(0x77);
    a.droopTo(Volt(0.01));
    size_t matches = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        matches += a.readByte(i) == 0x77;
    EXPECT_LT(static_cast<double>(matches) / a.sizeBytes(), 0.05);
}

TEST(MemoryArray, SameSeedSameSilicon)
{
    SramArray a("a", 512, 42, 11), b("b", 512, 42, 11);
    a.powerUp(Volt(0.8));
    b.powerUp(Volt(0.8));
    EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(MemoryArray, DifferentArrayIdDifferentFingerprint)
{
    SramArray a("a", 512, 42, 11), b("b", 512, 42, 12);
    a.powerUp(Volt(0.8));
    b.powerUp(Volt(0.8));
    EXPECT_NE(a.snapshot(), b.snapshot());
}

TEST(MemoryArray, ZeroSizeRejected)
{
    EXPECT_THROW(SramArray("t", 0, 1, 1), FatalError);
}

TEST(MemoryArray, LastLossMaskMatchesTheLossCount)
{
    SramArray a("t", 1003, 7, 13); // odd size: word-kernel tail
    a.powerUp(Volt(0.8));
    a.fill(0xFF);
    const std::vector<uint8_t> before = a.snapshot();
    a.droopTo(Volt::millivolts(250)); // ~half the cells flip
    const std::vector<uint8_t> after = a.snapshot();
    const std::vector<uint8_t> mask = a.lastLossMask();
    ASSERT_EQ(mask.size(), a.sizeBytes());
    uint64_t mask_bits = 0;
    for (size_t i = 0; i < mask.size(); ++i) {
        mask_bits += std::popcount(mask[i]);
        // Any bit that changed must be flagged lost (a lost cell may
        // still land on its old value, but never the reverse).
        ASSERT_EQ(static_cast<uint8_t>((before[i] ^ after[i]) & ~mask[i]),
                  0u)
            << "byte " << i;
    }
    EXPECT_EQ(mask_bits, a.lastCellsLost());
    EXPECT_GT(mask_bits, 0u);

    // A harmless droop reports an empty mask.
    a.droopTo(Volt(0.60)); // above drv_max
    EXPECT_EQ(a.lastCellsLost(), 0u);
    for (uint8_t b : a.lastLossMask())
        ASSERT_EQ(b, 0u);
}

TEST(MemoryArray, FillAndSnapshotAgreeWithByteAccessors)
{
    SramArray a("t", 1003, 8, 14); // not a multiple of 8: ragged word
    a.powerUp(Volt(0.8));
    a.fill(0xC3);
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        ASSERT_EQ(a.readByte(i), 0xC3) << "byte " << i;
    a.writeByte(1002, 0x1F);
    a.writeByte(0, 0x80);
    const std::vector<uint8_t> snap = a.snapshot();
    ASSERT_EQ(snap.size(), a.sizeBytes());
    EXPECT_EQ(snap[0], 0x80);
    EXPECT_EQ(snap[1002], 0x1F);
    for (size_t i = 1; i < 1002; ++i)
        ASSERT_EQ(snap[i], 0xC3) << "byte " << i;
}

// --- DRAM-scale smoke: the SoA planes at hundreds of megabits ---

TEST(DramScaleSmoke, SixtyFourMebibytePlaneDecaysAndSnapshots)
{
    constexpr size_t kBytes = size_t{64} << 20; // 2^29 cells
    const RetentionModel model(RetentionConfig::dram(),
                               CellRng(0xd7a3, 1));
    // Find a partial-decay point on the DRAM slope (survival strictly
    // between 5% and 95%) instead of hard-coding technology constants.
    const Temperature temp = Temperature::celsius(85.0);
    Seconds off(0.0);
    double p_survive = 1.0;
    for (double secs = 0.01; secs < 1e8; secs *= 2.0) {
        const double p = model.expectedSurvival(Seconds(secs), temp);
        if (p > 0.05 && p < 0.95) {
            off = Seconds(secs);
            p_survive = p;
            break;
        }
    }
    ASSERT_GT(off.seconds(), 0.0) << "no partial-decay point found";

    DramArray a("dram-scale", kBytes, 0xd7a3, 1);
    a.powerUp(Volt(1.1));
    a.fill(0x5A);
    a.powerDown();
    a.powerUp(Volt(1.1), off, temp);

    const double lost_frac =
        static_cast<double>(a.lastCellsLost()) / a.sizeBits();
    EXPECT_NEAR(lost_frac, 1.0 - p_survive, 0.01);

    const std::vector<uint8_t> snap = a.snapshot();
    ASSERT_EQ(snap.size(), kBytes);
    const std::vector<uint8_t> mask = a.lastLossMask();
    ASSERT_EQ(mask.size(), kBytes);
    uint64_t mask_bits = 0;
    for (size_t i = 0; i < kBytes; ++i) {
        mask_bits += std::popcount(mask[i]);
        // Surviving cells kept the pattern exactly.
        ASSERT_EQ(static_cast<uint8_t>((snap[i] ^ 0x5A) & ~mask[i]), 0u)
            << "byte " << i;
    }
    EXPECT_EQ(mask_bits, a.lastCellsLost());
}

// --- Property sweep: retention is monotone in temperature ---

class RetentionTemperatureSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(RetentionTemperatureSweep, ColderRetainsMore)
{
    const RetentionModel m = makeModel();
    const double celsius = GetParam();
    const Seconds off = Seconds::milliseconds(5);
    const double here =
        m.expectedSurvival(off, Temperature::celsius(celsius));
    const double colder =
        m.expectedSurvival(off, Temperature::celsius(celsius - 20));
    EXPECT_GE(colder, here);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, RetentionTemperatureSweep,
                         ::testing::Values(-100.0, -80.0, -60.0, -40.0,
                                           -20.0, 0.0, 25.0, 60.0));

// --- Property sweep: Monte Carlo matches the closed form ---

class SurvivalMonteCarlo
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(SurvivalMonteCarlo, ArrayLossMatchesExpectedSurvival)
{
    const auto [celsius, off_ms] = GetParam();
    const Temperature t = Temperature::celsius(celsius);
    const Seconds off = Seconds::milliseconds(off_ms);

    SramArray a("mc", 16384, 0x1234, 20);
    a.powerUp(Volt(0.8));
    // Write the complement of the fingerprint so every retained cell is
    // distinguishable from a reverted one.
    std::vector<uint8_t> fp = a.snapshot();
    for (size_t i = 0; i < fp.size(); ++i)
        a.writeByte(i, static_cast<uint8_t>(~fp[i]));
    a.powerDown();
    a.powerUp(Volt(0.8), off, t);

    size_t retained = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i)
        retained += std::popcount(
            static_cast<uint8_t>(a.readByte(i) ^ fp[i]));
    const double measured =
        static_cast<double>(retained) / a.sizeBits();

    const RetentionModel model(RetentionConfig::sram6t(),
                               CellRng(0x1234, 20));
    // Metastable cells that lost state re-roll: a fraction land back on
    // the complement of their enrollment draw, inflating 'retained' by
    // (1-p) * meta * flip_rate.
    const double p = model.expectedSurvival(off, t);
    const double meta = model.config().metastable_fraction;
    const double expected =
        p + (1.0 - p) * meta * model.expectedMetastableFlipRate();
    EXPECT_NEAR(measured, expected, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, SurvivalMonteCarlo,
    ::testing::Values(std::make_pair(-110.0, 20.0),
                      std::make_pair(-110.0, 5.0),
                      std::make_pair(-80.0, 5.0),
                      std::make_pair(-60.0, 1.0),
                      std::make_pair(-40.0, 2.0),
                      std::make_pair(25.0, 1.0)));

} // namespace
} // namespace voltboot

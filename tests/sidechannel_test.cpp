/**
 * @file
 * Tests for the static-undervolt sidechannel family: the CPU's
 * clock-gate hook, the three regimes of the Chypnosis-style extraction
 * (shallow sag loses the race, the sweet spot freezes and retains, an
 * over-deep sag kills the cells), the rate-limited readout path, the
 * supply-voltage-coupling victim + CPA analyzer (recovery, parse
 * stability, the flat-waveform negative, the correlation window), the
 * sidechannel_bounds trace invariant, and campaign-level byte
 * determinism across job counts for both new attacks.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "report/invariants.hh"
#include "report/trace_reader.hh"
#include "sidechannel/coupling.hh"
#include "sidechannel/static_extract.hh"
#include "soc/soc.hh"
#include "trace/trace.hh"

using namespace voltboot;

namespace
{

// --- the CPU's clock-gate hook ---------------------------------------

/** Gate whose state is flipped from outside the core. */
class ManualGate : public ClockGate
{
  public:
    bool running = true;
    bool clockRunning(uint64_t) override { return running; }
};

TEST(CpuClockGate, FreezeIsResumableAndDistinctFromHalt)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    const uint64_t load = soc.config().dram_base + 0x1000;
    Program p = Assembler::assemble("    movz x1, #1\n"
                                    "    movz x2, #2\n"
                                    "    movz x3, #3\n"
                                    "    hlt\n");
    p.load_address = load;
    soc.loadProgram(p);
    soc.memory().l1i(0).invalidateAll();

    Cpu &cpu = soc.cpu(0);
    ManualGate gate;
    cpu.setClockGate(&gate);
    cpu.reset(load);
    for (unsigned r : {1u, 2u, 3u})
        cpu.setX(r, 0);

    ASSERT_TRUE(cpu.step()); // movz x1
    gate.running = false;
    // A gated core makes no progress but has not halted: the state is
    // frozen in place, exactly what the slow readout relies on.
    EXPECT_FALSE(cpu.step());
    EXPECT_TRUE(cpu.frozen());
    EXPECT_FALSE(cpu.halted());
    EXPECT_EQ(cpu.x(1), 1u);
    EXPECT_EQ(cpu.x(2), 0u);

    gate.running = true;
    cpu.run(100);
    cpu.setClockGate(nullptr);
    EXPECT_TRUE(cpu.halted());
    EXPECT_FALSE(cpu.frozen());
    EXPECT_EQ(cpu.x(2), 2u);
    EXPECT_EQ(cpu.x(3), 3u);
}

// --- StaticExtractAttack ---------------------------------------------

/** Count @p value bytes in an image. */
size_t
countBytes(const MemoryImage &img, uint8_t value)
{
    size_t n = 0;
    for (size_t i = 0; i < img.sizeBytes(); ++i)
        n += img.byteAt(i) == value;
    return n;
}

/** Stage the 0xAA pattern and run one extraction at @p depth_v. */
sidechannel::StaticExtractOutcome
runExtraction(double depth_v, double readout_rate = 0.0)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    BareMetalRunner runner(soc);
    runner.runOn(0, workloads::patternStore(
                        soc.config().dram_base + 0x40000, 8192, 0xAA));

    sidechannel::StaticExtractConfig cfg;
    cfg.depth = Volt(depth_v);
    cfg.readout_rate = readout_rate;
    sidechannel::StaticExtractAttack attack(soc, cfg);
    return attack.execute();
}

TEST(StaticExtract, ShallowSagLosesTheRaceToZeroize)
{
    // 0.1 V of sag never crosses the brown-out threshold: the victim
    // keeps running and wipes the staged secret.
    const auto out = runExtraction(0.1);
    EXPECT_FALSE(out.frozen);
    EXPECT_TRUE(out.zeroized);
    EXPECT_EQ(out.cells_lost, 0u);
    EXPECT_LT(countBytes(out.dump, 0xAA), 1000u);
}

TEST(StaticExtract, SweetSpotFreezesAndRetains)
{
    // 0.45 V sags below brown-out (0.8 x 0.7 = 0.56 V) but stays above
    // the DRV band: the clock stops, the cells hold, the secret stays.
    const auto out = runExtraction(0.45);
    EXPECT_TRUE(out.frozen);
    EXPECT_FALSE(out.zeroized);
    // A weak-cell tail flips even at the sweet spot (the DRV band has
    // outliers), but well under 1% of the domain's bits.
    EXPECT_LT(out.cells_lost, 20000u);
    EXPECT_DOUBLE_EQ(out.read_fraction, 1.0);
    EXPECT_GT(countBytes(out.dump, 0xAA), 7000u);
}

TEST(StaticExtract, OverDeepSagKillsTheCells)
{
    // 0.7 V of sag drags the rail to 0.1 V, under the DRV of nearly
    // every cell: frozen, but the snapshot decays to fingerprints.
    const auto out = runExtraction(0.7);
    EXPECT_TRUE(out.frozen);
    EXPECT_GT(out.cells_lost, 0u);
    EXPECT_LT(countBytes(out.dump, 0xAA), 7000u);
}

TEST(StaticExtract, ReadoutRateBoundsTheObservedBytes)
{
    // 64 B/us over a 400 ns hold window = 25 whole bytes observed;
    // everything past the cutoff reads back as zero.
    const auto out = runExtraction(0.45, 64.0);
    EXPECT_TRUE(out.frozen);
    EXPECT_EQ(out.bytes_read, 25u);
    EXPECT_LT(out.read_fraction, 0.01);
    for (size_t i = out.bytes_read; i < out.dump.sizeBytes(); ++i)
        ASSERT_EQ(out.dump.byteAt(i), 0u) << "byte " << i;
}

TEST(StaticExtract, TraceSatisfiesTheSidechannelBoundsInvariant)
{
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        const auto out = runExtraction(0.45);
        EXPECT_TRUE(out.frozen);
    }
    bool saw_hold = false;
    for (const trace::TraceEvent &ev : sink.events())
        saw_hold |= ev.name == "undervolt.hold";
    EXPECT_TRUE(saw_hold);
    const auto violations = report::checkTraceInvariants(sink.events());
    EXPECT_TRUE(violations.empty())
        << report::renderViolations(violations);
}

// --- coupling victim + CPA analyzer ----------------------------------

std::array<uint8_t, 16>
testKey()
{
    return {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

std::vector<trace::TraceEvent>
captureVictim(const sidechannel::CouplingVictimConfig &cfg)
{
    trace::MemoryTraceSink sink;
    {
        trace::Scope scope(sink);
        const auto run = sidechannel::runCoupledAesVictim(cfg);
        EXPECT_EQ(run.blocks, cfg.blocks);
    }
    return sink.events();
}

TEST(Coupling, CpaRecoversTheFullKey)
{
    sidechannel::CouplingVictimConfig cfg;
    cfg.key = testKey();
    const auto events = captureVictim(cfg);

    const auto cpa = sidechannel::analyzeCoupling(events, {});
    EXPECT_EQ(cpa.blocks, cfg.blocks);
    EXPECT_EQ(sidechannel::countCorrectBytes(cpa, cfg.key), 16u);
    EXPECT_GE(cpa.recovered, 13u); // >= 80% confident
}

TEST(Coupling, AnalyzerIsByteStableAcrossReparses)
{
    sidechannel::CouplingVictimConfig cfg;
    cfg.key = testKey();
    const std::string jsonl =
        trace::toJsonl(captureVictim(cfg));

    // Same file parsed twice must rank every guess identically.
    const auto a = sidechannel::analyzeCoupling(
        report::readTrace(jsonl, "a"), {});
    const auto b = sidechannel::analyzeCoupling(
        report::readTrace(jsonl, "b"), {});
    EXPECT_EQ(sidechannel::renderCpaMarkdown(a),
              sidechannel::renderCpaMarkdown(b));
    EXPECT_EQ(sidechannel::countCorrectBytes(a, cfg.key), 16u);
}

TEST(Coupling, FlatWaveformRecoversNothing)
{
    // No coupling and no noise: the rail never moves, every
    // correlation is undefined-variance zero, nothing is confident.
    sidechannel::CouplingVictimConfig cfg;
    cfg.key = testKey();
    cfg.couple_mv_per_bit = 0.0;
    cfg.noise_mv = 0.0;
    const auto events = captureVictim(cfg);

    const auto cpa = sidechannel::analyzeCoupling(events, {});
    EXPECT_EQ(cpa.blocks, cfg.blocks);
    EXPECT_EQ(cpa.recovered, 0u);
    for (const auto &byte : cpa.bytes) {
        EXPECT_FALSE(byte.confident);
        // Not exactly zero: the constant rail leaves only rounding
        // residue in the variance terms.
        EXPECT_LT(byte.best_corr, 1e-3);
    }
}

TEST(Coupling, WindowRestrictsTheCorrelatedSlots)
{
    sidechannel::CouplingVictimConfig cfg;
    cfg.key = testKey();
    const auto events = captureVictim(cfg);

    sidechannel::CpaOptions opts;
    opts.window_ns = 2.0;
    const auto cpa = sidechannel::analyzeCoupling(events, opts);
    EXPECT_EQ(cpa.samples_per_block, 2u);
    // Only bytes 0 and 1 leak inside a two-cycle window.
    EXPECT_LT(sidechannel::countCorrectBytes(cpa, cfg.key), 6u);
}

TEST(Coupling, CaptureSatisfiesTheSidechannelBoundsInvariant)
{
    sidechannel::CouplingVictimConfig cfg;
    cfg.key = testKey();
    const auto events = captureVictim(cfg);
    const auto violations = report::checkTraceInvariants(events);
    EXPECT_TRUE(violations.empty())
        << report::renderViolations(violations);
}

// --- campaign integration --------------------------------------------

CampaignResult
runGrid(const SweepGrid &grid, unsigned jobs)
{
    CampaignConfig cfg;
    cfg.jobs = jobs;
    cfg.seed = 0x5eed;
    return Campaign(grid, cfg).run();
}

TEST(SidechannelCampaign, StaticExtractIsByteIdenticalAcrossJobs)
{
    SweepGrid grid;
    grid.attacks = {AttackKind::StaticExtract};
    grid.undervolt_depths_v = {0.1, 0.45};
    grid.holds_ns = {400.0}; // hold 0 = no ramp, nothing would freeze
    grid.readout_rates = {0.0, 64.0};
    grid.seed_count = 2;

    const CampaignResult one = runGrid(grid, 1);
    const CampaignResult four = runGrid(grid, 4);
    EXPECT_EQ(one.toJson(), four.toJson());
    EXPECT_EQ(one.toCsv(), four.toCsv());

    const CampaignSummary s = one.summary();
    EXPECT_EQ(s.static_trials, 8u);
    // Depth 0.45 freezes at both readout rates for both seeds.
    EXPECT_EQ(s.static_frozen, 4u);
}

TEST(SidechannelCampaign, CouplingIsByteIdenticalAcrossJobs)
{
    SweepGrid grid;
    grid.attacks = {AttackKind::VoltageCoupling};
    grid.cpa_windows_ns = {0.0, 8.0};
    grid.seed_count = 2;

    const CampaignResult one = runGrid(grid, 1);
    const CampaignResult four = runGrid(grid, 4);
    EXPECT_EQ(one.toJson(), four.toJson());
    EXPECT_EQ(one.toCsv(), four.toCsv());

    const CampaignSummary s = one.summary();
    EXPECT_EQ(s.coupling_trials, 4u);
    // The full-window trials recover the whole planted key.
    for (const TrialRecord &rec : one.records) {
        if (rec.spec.cpa_window_ns == 0.0) {
            EXPECT_EQ(rec.cpa_recovered, 16u);
            EXPECT_TRUE(rec.key_exact);
        }
    }
}

} // namespace

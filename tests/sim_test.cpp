/**
 * @file
 * Unit tests for the sim foundation: units, RNG, event queue, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/cell_hash_batch.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/plane_arena.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/units.hh"

namespace voltboot
{
namespace
{

TEST(Units, VoltConstructionAndAccessors)
{
    const Volt v = Volt::millivolts(800);
    EXPECT_DOUBLE_EQ(v.volts(), 0.8);
    EXPECT_DOUBLE_EQ(v.millivolts(), 800.0);
}

TEST(Units, ArithmeticWithinUnit)
{
    const Volt a(1.2), b(0.4);
    EXPECT_DOUBLE_EQ((a + b).volts(), 1.6);
    EXPECT_DOUBLE_EQ((a - b).volts(), 0.8);
    EXPECT_DOUBLE_EQ((a * 2.0).volts(), 2.4);
    EXPECT_DOUBLE_EQ((a / 2.0).volts(), 0.6);
    EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(Units, Ordering)
{
    EXPECT_LT(Volt(0.5), Volt(0.8));
    EXPECT_GT(Seconds::milliseconds(2), Seconds::microseconds(500));
    EXPECT_EQ(Volt::millivolts(250), Volt(0.25));
}

TEST(Units, OhmsLaw)
{
    const Volt drop = Amp(2.0) * Ohm(0.05);
    EXPECT_DOUBLE_EQ(drop.volts(), 0.1);
    const Amp i = Volt(1.0) / Ohm(4.0);
    EXPECT_DOUBLE_EQ(i.amps(), 0.25);
}

TEST(Units, RcTimeConstant)
{
    const Seconds tau = Ohm(100.0) * Farad::microfarads(10);
    EXPECT_NEAR(tau.seconds(), 1e-3, 1e-12);
}

TEST(Units, TemperatureConversions)
{
    const Temperature t = Temperature::celsius(-40.0);
    EXPECT_DOUBLE_EQ(t.kelvins(), 233.15);
    EXPECT_DOUBLE_EQ(t.celsiusDegrees(), -40.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BelowBound)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(CellRng, RandomAccessIsStable)
{
    CellRng rng(0xc0ffee, 3);
    const double first = rng.uniform(12345, 1);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.uniform(12345, 1), first);
}

TEST(CellRng, ChannelsAreIndependent)
{
    CellRng rng(0xc0ffee, 3);
    EXPECT_NE(rng.bits(5, 1), rng.bits(5, 2));
    EXPECT_NE(rng.bits(5, 1), rng.bits(6, 1));
}

TEST(CellRng, DifferentChipsDifferentSilicon)
{
    CellRng a(1, 0), b(2, 0);
    int same = 0;
    for (uint64_t cell = 0; cell < 64; ++cell)
        same += (a.bits(cell, 3) & 1) == (b.bits(cell, 3) & 1);
    // ~32 expected by chance; all-64 would mean the seed is ignored.
    EXPECT_LT(same, 50);
    EXPECT_GT(same, 14);
}

TEST(CellRng, InverseNormalCdfRoundTrip)
{
    // Phi(Phi^-1(p)) == p at several quantiles.
    const auto phi = [](double x) {
        return 0.5 * std::erfc(-x / std::sqrt(2.0));
    };
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999})
        EXPECT_NEAR(phi(CellRng::inverseNormalCdf(p)), p, 1e-6);
}

TEST(CellRng, GaussianMomentsAcrossCells)
{
    CellRng rng(0xabc, 7);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(i, 2);
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Seconds(3.0), [&] { order.push_back(3); });
    q.schedule(Seconds(1.0), [&] { order.push_back(1); });
    q.schedule(Seconds(2.0), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now().seconds(), 3.0);
}

TEST(EventQueue, SimultaneousEventsUsePriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Seconds(1.0), [&] { order.push_back(10); }, 1);
    q.schedule(Seconds(1.0), [&] { order.push_back(0); }, 0);
    q.schedule(Seconds(1.0), [&] { order.push_back(11); }, 1);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.runUntil(Seconds(5.0));
    EXPECT_DOUBLE_EQ(q.now().seconds(), 5.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Seconds(1.0), [&] { ++fired; });
    q.schedule(Seconds(10.0), [&] { ++fired; });
    q.runUntil(Seconds(2.0));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_DOUBLE_EQ(q.now().seconds(), 2.0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    double fired_at = -1.0;
    q.schedule(Seconds(2.0), [&] {
        q.scheduleAfter(Seconds(3.0),
                        [&] { fired_at = q.now().seconds(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Stats, RunningStatsMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_GT(s.ci95(), 0.0);
}

TEST(Stats, RunningStatsEmptyAndSingle)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, RunningStatsMatchesGaussianSource)
{
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Stats, HistogramBinsAndTails)
{
    Histogram h(0.0, 10.0, 5);
    for (double x : {-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0})
        h.add(x);
    EXPECT_EQ(h.total(), 8u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.counts()[0], 2u); // 0.0, 1.9
    EXPECT_EQ(h.counts()[1], 1u); // 2.0
    EXPECT_EQ(h.counts()[2], 1u); // 5.5
    EXPECT_EQ(h.counts()[4], 1u); // 9.99
    EXPECT_NE(h.render().find("(2)"), std::string::npos);
}

TEST(Stats, HistogramRejectsBadShape)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 5), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(Logging, MessagesAreFormatted)
{
    try {
        fatal("value ", 7, " exceeds ", 3.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7 exceeds 3.5");
    }
}

// --- Arena-backed bit planes (the SoA retention storage) ---

TEST(PlaneArena, AllocationsAreZeroedAndAligned)
{
    PlaneArena arena;
    for (size_t nwords : {1u, 7u, 64u, 1000u}) {
        uint64_t *p = arena.allocWords(nwords);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
        for (size_t i = 0; i < nwords; ++i)
            ASSERT_EQ(p[i], 0u) << "word " << i;
    }
}

TEST(PlaneArena, ReserveYieldsOneTightBlock)
{
    PlaneArena arena;
    const size_t span = PlaneArena::alignWords(BitPlane::wordsFor(100000));
    arena.reserve(3 * span);
    arena.allocBits(100000);
    arena.allocBits(100000);
    arena.allocBits(100000);
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_EQ(arena.bytesUsed(), 3 * span * sizeof(uint64_t));
    EXPECT_GE(arena.bytesReserved(), arena.bytesUsed());
}

TEST(PlaneArena, ViewsSurviveAMoveOfTheArena)
{
    PlaneArena arena;
    BitPlane plane = arena.allocBits(200);
    plane.setBit(3, true);
    plane.setBit(199, true);
    PlaneArena moved = std::move(arena);
    EXPECT_TRUE(plane.bit(3));
    EXPECT_TRUE(plane.bit(199));
    EXPECT_EQ(plane.popcount(), 2u);
    EXPECT_GT(moved.bytesReserved(), 0u);
}

TEST(BitPlane, ByteAndBitAccessorsAgree)
{
    PlaneArena arena;
    BitPlane plane = arena.allocBits(30 * 8); // not a whole word count
    for (size_t addr = 0; addr < 30; ++addr)
        plane.setByte(addr, static_cast<uint8_t>(addr * 37 + 1));
    for (size_t addr = 0; addr < 30; ++addr) {
        const uint8_t v = static_cast<uint8_t>(addr * 37 + 1);
        ASSERT_EQ(plane.byteAt(addr), v) << "byte " << addr;
        for (int bit = 0; bit < 8; ++bit)
            ASSERT_EQ(plane.bit(addr * 8 + bit), (v >> bit) & 1)
                << "byte " << addr << " bit " << bit;
    }
}

TEST(BitPlane, BlockTransfersRoundTrip)
{
    PlaneArena arena;
    BitPlane plane = arena.allocBits(101 * 8);
    std::vector<uint8_t> data(57);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i ^ 0xC3);
    plane.writeBytes(11, data.data(), data.size());
    std::vector<uint8_t> back(data.size());
    plane.readBytes(11, back.data(), back.size());
    EXPECT_EQ(back, data);
    const std::vector<uint8_t> all = plane.toBytes();
    ASSERT_EQ(all.size(), 101u);
    for (size_t i = 0; i < data.size(); ++i)
        ASSERT_EQ(all[11 + i], data[i]);
    EXPECT_EQ(all[0], 0u); // untouched bytes stayed zeroed
}

TEST(BitPlane, FillSetAllAndClearKeepTheTailInvariant)
{
    PlaneArena arena;
    BitPlane plane = arena.allocBits(13 * 8); // 104 bits: ragged word
    plane.fillBytes(0xFF);
    EXPECT_EQ(plane.popcount(), 13u * 8);
    // Bits past sizeBits() in the final word must stay zero.
    EXPECT_EQ(plane.word(plane.sizeWords() - 1) & ~plane.tailMask(), 0u);
    plane.setAll();
    EXPECT_EQ(plane.popcount(), 13u * 8);
    EXPECT_EQ(plane.word(plane.sizeWords() - 1) & ~plane.tailMask(), 0u);
    plane.clear();
    EXPECT_EQ(plane.popcount(), 0u);
    plane.fillBytes(0xA5);
    for (size_t addr = 0; addr < 13; ++addr)
        ASSERT_EQ(plane.byteAt(addr), 0xA5);
}

// --- Word-mask derivation batches (bit-exact with CellRng) ---

TEST(CellHashBatch, IndexedBatchMatchesScalarBits)
{
    const CellRng rng(0xfeed, 9);
    uint64_t keys[64], out[64];
    for (unsigned i = 0; i < 64; ++i)
        keys[i] = hashCombine(i * 977 + 13, 41); // scattered keys
    for (unsigned n : {1u, 7u, 8u, 9u, 63u, 64u}) {
        cellBitsBatchIndexed(rng, keys, 5, n, out);
        for (unsigned i = 0; i < n; ++i)
            ASSERT_EQ(out[i], rng.bits(keys[i], 5))
                << "n=" << n << " i=" << i;
    }
}

TEST(CellHashBatch, BandMaskMatchesScalarCompares)
{
    const CellRng rng(0xabc, 4);
    // A band placed at the median so both sides populate, wide enough
    // that in_band bits actually occur.
    const uint64_t lo = CellRng::kRawUniformBuckets / 2;
    const uint64_t hi = lo + (CellRng::kRawUniformBuckets / 16);
    uint64_t saw_in_band = 0;
    for (uint64_t cell0 : {0ull, 64ull, 1000ull}) {
        for (unsigned n : {1u, 9u, 64u}) {
            uint64_t in_band = ~uint64_t{0};
            const uint64_t ge =
                cellBandMaskBatch(rng, cell0, 2, n, lo, hi, &in_band);
            for (unsigned b = 0; b < n; ++b) {
                const uint64_t raw = rng.rawUniform(cell0 + b, 2);
                ASSERT_EQ((ge >> b) & 1, raw >= lo ? 1u : 0u);
                ASSERT_EQ((in_band >> b) & 1,
                          (raw >= lo && raw < hi) ? 1u : 0u);
            }
            // Lanes past n must be zero in both masks.
            if (n < 64) {
                EXPECT_EQ(ge >> n, 0u);
                EXPECT_EQ(in_band >> n, 0u);
            }
            saw_in_band |= in_band;
        }
    }
    EXPECT_NE(saw_in_band, 0u); // the wide band really exercised it
}

TEST(CellHashBatch, RawBucketBandMaskMatchesScalarCompares)
{
    uint64_t raw[64];
    uint32_t bucket[64];
    const CellRng rng(0x77, 1);
    for (unsigned i = 0; i < 64; ++i) {
        raw[i] = rng.rawUniform(i, 3);
        bucket[i] = static_cast<uint32_t>(raw[i] >> 21);
    }
    const uint64_t lo = CellRng::kRawUniformBuckets / 3;
    const uint64_t hi = 2 * (CellRng::kRawUniformBuckets / 3);
    for (unsigned n : {1u, 8u, 15u, 17u, 64u}) {
        uint64_t in_band = ~uint64_t{0};
        const uint64_t ge = rawBucketBandMask(bucket, n, lo, hi, &in_band);
        for (unsigned b = 0; b < n; ++b) {
            const bool resolve = (in_band >> b) & 1;
            if (resolve) {
                // The scalar-resolve set may over-approximate [lo, hi)
                // by at most one 2^21-raw bucket per edge.
                ASSERT_GE(raw[b] + (uint64_t{1} << 21), lo);
                ASSERT_LT(raw[b], hi + (uint64_t{1} << 21));
            } else {
                // Outside it, the classification is exact.
                ASSERT_EQ((ge >> b) & 1, raw[b] >= lo ? 1u : 0u);
            }
            // Every true in-band raw must be in the resolve set.
            if (raw[b] >= lo && raw[b] < hi)
                ASSERT_TRUE(resolve);
        }
        if (n < 64) {
            EXPECT_EQ(ge >> n, 0u);
            EXPECT_EQ(in_band >> n, 0u);
        }
    }
    // A band at the top of the hash range: hi's bucket (2^32)
    // overflows a 32-bit lane; nothing may classify as >= hi.
    uint64_t in_band = ~uint64_t{0};
    const uint64_t ge = rawBucketBandMask(
        bucket, 64, CellRng::kRawUniformBuckets - (uint64_t{1} << 22),
        CellRng::kRawUniformBuckets, &in_band);
    EXPECT_EQ(ge, 0u);
    // And a degenerate band above every representable raw: no lane
    // dies, no lane needs resolving.
    const uint64_t ge2 = rawBucketBandMask(
        bucket, 64, CellRng::kRawUniformBuckets,
        CellRng::kRawUniformBuckets, &in_band);
    EXPECT_EQ(ge2, 0u);
    EXPECT_EQ(in_band, 0u);
}

TEST(CellHashBatch, LsbMaskMatchesScalarBits)
{
    const CellRng rng(0x5eed, 8);
    for (uint64_t cell0 : {0ull, 320ull}) {
        for (unsigned n : {1u, 5u, 16u, 64u}) {
            const uint64_t mask = cellLsbMaskBatch(rng, cell0, 3, n);
            for (unsigned b = 0; b < n; ++b)
                ASSERT_EQ((mask >> b) & 1, rng.bits(cell0 + b, 3) & 1);
            if (n < 64)
                EXPECT_EQ(mask >> n, 0u);
        }
    }
}

} // namespace
} // namespace voltboot

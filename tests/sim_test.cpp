/**
 * @file
 * Unit tests for the sim foundation: units, RNG, event queue, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/units.hh"

namespace voltboot
{
namespace
{

TEST(Units, VoltConstructionAndAccessors)
{
    const Volt v = Volt::millivolts(800);
    EXPECT_DOUBLE_EQ(v.volts(), 0.8);
    EXPECT_DOUBLE_EQ(v.millivolts(), 800.0);
}

TEST(Units, ArithmeticWithinUnit)
{
    const Volt a(1.2), b(0.4);
    EXPECT_DOUBLE_EQ((a + b).volts(), 1.6);
    EXPECT_DOUBLE_EQ((a - b).volts(), 0.8);
    EXPECT_DOUBLE_EQ((a * 2.0).volts(), 2.4);
    EXPECT_DOUBLE_EQ((a / 2.0).volts(), 0.6);
    EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(Units, Ordering)
{
    EXPECT_LT(Volt(0.5), Volt(0.8));
    EXPECT_GT(Seconds::milliseconds(2), Seconds::microseconds(500));
    EXPECT_EQ(Volt::millivolts(250), Volt(0.25));
}

TEST(Units, OhmsLaw)
{
    const Volt drop = Amp(2.0) * Ohm(0.05);
    EXPECT_DOUBLE_EQ(drop.volts(), 0.1);
    const Amp i = Volt(1.0) / Ohm(4.0);
    EXPECT_DOUBLE_EQ(i.amps(), 0.25);
}

TEST(Units, RcTimeConstant)
{
    const Seconds tau = Ohm(100.0) * Farad::microfarads(10);
    EXPECT_NEAR(tau.seconds(), 1e-3, 1e-12);
}

TEST(Units, TemperatureConversions)
{
    const Temperature t = Temperature::celsius(-40.0);
    EXPECT_DOUBLE_EQ(t.kelvins(), 233.15);
    EXPECT_DOUBLE_EQ(t.celsiusDegrees(), -40.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BelowBound)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(CellRng, RandomAccessIsStable)
{
    CellRng rng(0xc0ffee, 3);
    const double first = rng.uniform(12345, 1);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.uniform(12345, 1), first);
}

TEST(CellRng, ChannelsAreIndependent)
{
    CellRng rng(0xc0ffee, 3);
    EXPECT_NE(rng.bits(5, 1), rng.bits(5, 2));
    EXPECT_NE(rng.bits(5, 1), rng.bits(6, 1));
}

TEST(CellRng, DifferentChipsDifferentSilicon)
{
    CellRng a(1, 0), b(2, 0);
    int same = 0;
    for (uint64_t cell = 0; cell < 64; ++cell)
        same += (a.bits(cell, 3) & 1) == (b.bits(cell, 3) & 1);
    // ~32 expected by chance; all-64 would mean the seed is ignored.
    EXPECT_LT(same, 50);
    EXPECT_GT(same, 14);
}

TEST(CellRng, InverseNormalCdfRoundTrip)
{
    // Phi(Phi^-1(p)) == p at several quantiles.
    const auto phi = [](double x) {
        return 0.5 * std::erfc(-x / std::sqrt(2.0));
    };
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999})
        EXPECT_NEAR(phi(CellRng::inverseNormalCdf(p)), p, 1e-6);
}

TEST(CellRng, GaussianMomentsAcrossCells)
{
    CellRng rng(0xabc, 7);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(i, 2);
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Seconds(3.0), [&] { order.push_back(3); });
    q.schedule(Seconds(1.0), [&] { order.push_back(1); });
    q.schedule(Seconds(2.0), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now().seconds(), 3.0);
}

TEST(EventQueue, SimultaneousEventsUsePriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Seconds(1.0), [&] { order.push_back(10); }, 1);
    q.schedule(Seconds(1.0), [&] { order.push_back(0); }, 0);
    q.schedule(Seconds(1.0), [&] { order.push_back(11); }, 1);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.runUntil(Seconds(5.0));
    EXPECT_DOUBLE_EQ(q.now().seconds(), 5.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Seconds(1.0), [&] { ++fired; });
    q.schedule(Seconds(10.0), [&] { ++fired; });
    q.runUntil(Seconds(2.0));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_DOUBLE_EQ(q.now().seconds(), 2.0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    double fired_at = -1.0;
    q.schedule(Seconds(2.0), [&] {
        q.scheduleAfter(Seconds(3.0),
                        [&] { fired_at = q.now().seconds(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Stats, RunningStatsMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_GT(s.ci95(), 0.0);
}

TEST(Stats, RunningStatsEmptyAndSingle)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, RunningStatsMatchesGaussianSource)
{
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Stats, HistogramBinsAndTails)
{
    Histogram h(0.0, 10.0, 5);
    for (double x : {-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0})
        h.add(x);
    EXPECT_EQ(h.total(), 8u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.counts()[0], 2u); // 0.0, 1.9
    EXPECT_EQ(h.counts()[1], 1u); // 2.0
    EXPECT_EQ(h.counts()[2], 1u); // 5.5
    EXPECT_EQ(h.counts()[4], 1u); // 9.99
    EXPECT_NE(h.render().find("(2)"), std::string::npos);
}

TEST(Stats, HistogramRejectsBadShape)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 5), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(Logging, MessagesAreFormatted)
{
    try {
        fatal("value ", 7, " exceeds ", 3.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7 exceeds 3.5");
    }
}

} // namespace
} // namespace voltboot

/**
 * @file
 * Tests for the crypto module: AES correctness against the FIPS-197
 * reference vectors, key expansion structure, the key-schedule scanner,
 * and the TRESOR/CaSE on-chip victim models.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes.hh"
#include "crypto/key_finder.hh"
#include "crypto/onchip_crypto.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

namespace voltboot
{
namespace
{

std::vector<uint8_t>
fromHex(const std::string &hex)
{
    std::vector<uint8_t> out;
    for (size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<uint8_t>(
            std::stoul(hex.substr(i, 2), nullptr, 16)));
    return out;
}

// FIPS-197 Appendix C known-answer vectors.
TEST(Aes, Fips197Aes128Vector)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    const auto want = fromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    Aes aes(key);
    std::array<uint8_t, 16> block;
    std::memcpy(block.data(), pt.data(), 16);
    aes.encryptBlock(block);
    EXPECT_EQ(std::vector<uint8_t>(block.begin(), block.end()), want);
    aes.decryptBlock(block);
    EXPECT_EQ(std::vector<uint8_t>(block.begin(), block.end()), pt);
}

TEST(Aes, Fips197Aes192Vector)
{
    const auto key =
        fromHex("000102030405060708090a0b0c0d0e0f1011121314151617");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    const auto want = fromHex("dda97ca4864cdfe06eaf70a0ec0d7191");
    Aes aes(key);
    std::array<uint8_t, 16> block;
    std::memcpy(block.data(), pt.data(), 16);
    aes.encryptBlock(block);
    EXPECT_EQ(std::vector<uint8_t>(block.begin(), block.end()), want);
}

TEST(Aes, Fips197Aes256Vector)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f"
                             "101112131415161718191a1b1c1d1e1f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    const auto want = fromHex("8ea2b7ca516745bfeafc49904b496089");
    Aes aes(key);
    std::array<uint8_t, 16> block;
    std::memcpy(block.data(), pt.data(), 16);
    aes.encryptBlock(block);
    EXPECT_EQ(std::vector<uint8_t>(block.begin(), block.end()), want);
    aes.decryptBlock(block);
    EXPECT_EQ(std::vector<uint8_t>(block.begin(), block.end()), pt);
}

TEST(Aes, ScheduleSizes)
{
    EXPECT_EQ(Aes::expandKey(std::vector<uint8_t>(16, 0)).size(), 176u);
    EXPECT_EQ(Aes::expandKey(std::vector<uint8_t>(24, 0)).size(), 208u);
    EXPECT_EQ(Aes::expandKey(std::vector<uint8_t>(32, 0)).size(), 240u);
    EXPECT_THROW(Aes::expandKey(std::vector<uint8_t>(17, 0)), FatalError);
}

TEST(Aes, ScheduleStartsWithMasterKey)
{
    std::vector<uint8_t> key(16);
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<uint8_t>(i * 7 + 1);
    const auto sched = Aes::expandKey(key);
    EXPECT_TRUE(std::equal(key.begin(), key.end(), sched.begin()));
}

TEST(Aes, EcbRoundTrip)
{
    Rng rng(99);
    std::vector<uint8_t> key(32), data(256);
    for (auto &b : key)
        b = static_cast<uint8_t>(rng.next());
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.next());
    Aes aes(key);
    EXPECT_EQ(aes.decryptEcb(aes.encryptEcb(data)), data);
    EXPECT_NE(aes.encryptEcb(data), data);
    EXPECT_THROW(aes.encryptEcb(std::vector<uint8_t>(15, 0)), FatalError);
}

class AesKeySweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(AesKeySweep, EncryptDecryptIsIdentity)
{
    Rng rng(GetParam());
    std::vector<uint8_t> key(GetParam());
    for (auto &b : key)
        b = static_cast<uint8_t>(rng.next());
    Aes aes(key);
    std::array<uint8_t, 16> block;
    for (auto &b : block)
        b = static_cast<uint8_t>(rng.next());
    const auto orig = block;
    aes.encryptBlock(block);
    aes.decryptBlock(block);
    EXPECT_EQ(block, orig);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesKeySweep,
                         ::testing::Values(16, 24, 32));

// --- KeyFinder ---

MemoryImage
dumpWithSchedule(const std::vector<uint8_t> &key, size_t offset,
                 size_t total = 4096, uint64_t noise_seed = 5)
{
    Rng rng(noise_seed);
    std::vector<uint8_t> bytes(total);
    for (auto &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    const auto sched = Aes::expandKey(key);
    std::copy(sched.begin(), sched.end(), bytes.begin() + offset);
    return MemoryImage(std::move(bytes));
}

TEST(KeyFinder, FindsCleanAes128Schedule)
{
    const std::vector<uint8_t> key =
        fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const MemoryImage dump = dumpWithSchedule(key, 1024);
    KeyFinder finder;
    const auto best = finder.best(dump);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->offset, 1024u);
    EXPECT_EQ(best->key, key);
    EXPECT_EQ(best->bit_errors, 0u);
}

TEST(KeyFinder, FindsAes256Schedule)
{
    const std::vector<uint8_t> key = fromHex(
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
    const MemoryImage dump = dumpWithSchedule(key, 512);
    KeyFinderConfig cfg;
    cfg.aes128 = false;
    cfg.aes256 = true;
    KeyFinder finder(cfg);
    const auto best = finder.best(dump);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->offset, 512u);
    EXPECT_EQ(best->key, key);
}

TEST(KeyFinder, NoFalsePositivesInRandomNoise)
{
    Rng rng(1234);
    std::vector<uint8_t> bytes(64 * 1024);
    for (auto &b : bytes)
        b = static_cast<uint8_t>(rng.next());
    KeyFinderConfig cfg;
    cfg.max_error_fraction = 0.0; // exact schedules only
    KeyFinder finder(cfg);
    EXPECT_TRUE(finder.scan(MemoryImage(std::move(bytes))).empty());
}

TEST(KeyFinder, ToleratesModestBitErrors)
{
    const std::vector<uint8_t> key =
        fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    MemoryImage clean = dumpWithSchedule(key, 256);
    // Flip bits in the derived part of the schedule at ~2% BER (a mild
    // cold-boot-style corruption). The master key bytes stay intact so
    // recovery is exact.
    std::vector<uint8_t> bytes = clean.bytes();
    Rng rng(77);
    for (size_t i = 256 + 16; i < 256 + 176; ++i)
        for (int bit = 0; bit < 8; ++bit)
            if (rng.chance(0.02))
                bytes[i] ^= 1u << bit;
    KeyFinderConfig cfg;
    cfg.max_error_fraction = 0.10;
    KeyFinder finder(cfg);
    const auto best = finder.best(MemoryImage(std::move(bytes)));
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->key, key);
    EXPECT_GT(best->bit_errors, 0u);
}

TEST(KeyFinder, HeavyCorruptionDefeatsTheScan)
{
    // A 50%-wrong dump (the cold boot result on SRAM) yields nothing.
    const std::vector<uint8_t> key =
        fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    MemoryImage clean = dumpWithSchedule(key, 256);
    std::vector<uint8_t> bytes = clean.bytes();
    Rng rng(78);
    for (auto &b : bytes)
        for (int bit = 0; bit < 8; ++bit)
            if (rng.chance(0.5))
                b ^= 1u << bit;
    KeyFinder finder; // 10% tolerance
    EXPECT_FALSE(finder.best(MemoryImage(std::move(bytes))).has_value());
}

TEST(KeyFinder, ScheduleBitErrorsIsZeroForIdealWindow)
{
    const std::vector<uint8_t> key(16, 0x42);
    const auto sched = Aes::expandKey(key);
    EXPECT_EQ(KeyFinder::scheduleBitErrors(sched, 16), 0u);
}

// --- On-chip crypto victims ---

TEST(TresorCipher, KeyLivesOnlyInVectorRegisters)
{
    Soc soc(SocConfig::bcm2837());
    soc.powerOn();
    const std::vector<uint8_t> key =
        fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    TresorCipher tresor(soc.cpu(0), key);
    EXPECT_EQ(tresor.scheduleBytes(), 176u);

    // Encryption through the register-resident schedule matches plain AES.
    std::array<uint8_t, 16> a{}, b{};
    for (int i = 0; i < 16; ++i)
        a[i] = b[i] = static_cast<uint8_t>(i);
    tresor.encryptBlock(a);
    Aes(key).encryptBlock(b);
    EXPECT_EQ(a, b);

    // The schedule is literally in the v-register backing SRAM.
    const auto sched = Aes::expandKey(key);
    std::vector<uint8_t> regs(176);
    soc.vRegs(0).read(0, regs);
    EXPECT_EQ(regs, sched);
}

TEST(TresorCipher, RejectsOversizedSchedule)
{
    Soc soc(SocConfig::bcm2837());
    soc.powerOn();
    // 32 * 16 = 512 bytes available; AES-256 (240) fits fine.
    const std::vector<uint8_t> key(32, 1);
    TresorCipher t(soc.cpu(0), key);
    EXPECT_EQ(t.scheduleBytes(), 240u);
}

TEST(CaseExecution, StagesAndLocksPlaintextInCache)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    Cache &l1d = soc.memory().l1d(0);
    l1d.invalidateAll();
    l1d.setEnabled(true);

    const std::vector<uint8_t> key =
        fromHex("000102030405060708090a0b0c0d0e0f");
    std::vector<uint8_t> binary(512);
    for (size_t i = 0; i < binary.size(); ++i)
        binary[i] = static_cast<uint8_t>(0xE0 + i % 16);

    const uint64_t base = soc.config().dram_base + 0x40000;
    CaseExecution cas(l1d, base, binary, key);

    // Crypto works from the locked lines.
    std::array<uint8_t, 16> blk{}, ref{};
    cas.encryptBlock(blk);
    Aes(key).encryptBlock(ref);
    EXPECT_EQ(blk, ref);

    // Nothing secret reached DRAM: the schedule exists only in cache.
    const auto sched = Aes::expandKey(key);
    std::vector<uint8_t> dram_window(4096);
    soc.dramArray().read(0x40000, dram_window);
    const MemoryImage dram_img(std::move(dram_window));
    EXPECT_FALSE(dram_img.contains(
        std::span<const uint8_t>(sched.data(), 32)));

    // And the lines survive an eviction storm (they are locked).
    for (uint64_t a = 0; a < 512 * 1024; a += 64)
        l1d.read64(soc.config().dram_base + 0x100000 + (a % 0x80000),
                   true);
    EXPECT_TRUE(l1d.probeHit(base));
    EXPECT_TRUE(l1d.probeHit(cas.scheduleAddress()));
}

TEST(SentryExecution, CleartextOnlyInIram)
{
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    const std::vector<uint8_t> key =
        fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    SentryExecution sentry(*soc.memory().mainMemory(), *soc.iramArray(),
                           /*iram_offset=*/0x4000, key);

    std::vector<uint8_t> page(256);
    const std::string secret = "SENTRY-PROTECTED-USER-DATA";
    std::copy(secret.begin(), secret.end(), page.begin());

    const uint64_t dram_addr = soc.config().dram_base + 0x60000;
    sentry.protectPage(dram_addr, page);

    // DRAM holds only ciphertext.
    std::vector<uint8_t> dram_window(512);
    soc.dramArray().read(0x60000, dram_window);
    const std::vector<uint8_t> marker(secret.begin(), secret.end());
    EXPECT_FALSE(MemoryImage(dram_window).contains(marker));

    // Unlock decrypts into the iRAM workspace.
    const size_t clear_off = sentry.unlockPage(dram_addr, page.size());
    std::vector<uint8_t> clear(page.size());
    soc.iramArray()->read(clear_off, clear);
    EXPECT_EQ(clear, page);

    // An orderly lock wipes it...
    sentry.lockWorkspace();
    soc.iramArray()->read(clear_off, clear);
    EXPECT_NE(clear, page);
}

TEST(SentryExecution, VoltBootStealsTheUnlockedWorkspace)
{
    // The in-use path: the page is unlocked when the attacker strikes.
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    const std::vector<uint8_t> key =
        fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    SentryExecution sentry(*soc.memory().mainMemory(), *soc.iramArray(),
                           0x4000, key);
    std::vector<uint8_t> page(256, 0);
    const std::string secret = "SENTRY-PROTECTED-USER-DATA";
    std::copy(secret.begin(), secret.end(), page.begin());
    const uint64_t dram_addr = soc.config().dram_base + 0x60000;
    sentry.protectPage(dram_addr, page);
    sentry.unlockPage(dram_addr, page.size());

    // Probe VDDAL1, cycle, dump the iRAM over JTAG.
    soc.attachProbe("SH13", VoltageProbe{Volt(1.3), Amp(3), Ohm(0.05)});
    soc.powerCycle(Seconds::milliseconds(500));
    const MemoryImage dump = soc.jtag().readIram(
        soc.config().iram_base, soc.config().iram_bytes);

    // Both the cleartext AND the key schedule are in the dump.
    const std::vector<uint8_t> marker(secret.begin(), secret.end());
    EXPECT_TRUE(dump.contains(marker));
    KeyFinder finder;
    const auto hit = finder.best(dump);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->key, key);
}

TEST(SentryExecution, RejectsBadShapes)
{
    Soc soc(SocConfig::imx535());
    soc.powerOn();
    const std::vector<uint8_t> key(16, 1);
    EXPECT_THROW(SentryExecution(*soc.memory().mainMemory(),
                                 *soc.iramArray(),
                                 soc.config().iram_bytes - 8, key),
                 FatalError);
    SentryExecution s(*soc.memory().mainMemory(), *soc.iramArray(),
                      0x4000, key);
    const std::vector<uint8_t> odd(15, 0);
    EXPECT_THROW(s.protectPage(0x60000, odd), FatalError);
    EXPECT_THROW(s.unlockPage(0x60000, 8), FatalError);
}

TEST(CaseExecution, RequiresEnabledCache)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();
    Cache &l1d = soc.memory().l1d(0);
    l1d.setEnabled(false);
    const std::vector<uint8_t> key(16, 0);
    const std::vector<uint8_t> binary(64, 0);
    EXPECT_THROW(CaseExecution(l1d, 0x40000, binary, key), FatalError);
}

} // namespace
} // namespace voltboot

/**
 * @file
 * Tests for the core analysis helpers and the Section 8 countermeasure
 * survey.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/analysis.hh"
#include "core/countermeasures.hh"
#include "sim/logging.hh"
#include "soc/soc_config.hh"

namespace voltboot
{
namespace
{

TEST(Analysis, CompareImagesCountsBitErrors)
{
    const MemoryImage a({0xFF, 0x00, 0xF0});
    const MemoryImage b({0xFF, 0x0F, 0xF0});
    const RetentionReport r = compareImages(a, b);
    EXPECT_EQ(r.total_bits, 24u);
    EXPECT_EQ(r.error_bits, 4u);
    EXPECT_NEAR(r.errorFraction(), 4.0 / 24.0, 1e-12);
    EXPECT_NEAR(r.accuracy(), 20.0 / 24.0, 1e-12);
}

TEST(Analysis, RecoverElementsPerWayAndUnion)
{
    const uint64_t e1 = 0x0101010101010101ull;
    const uint64_t e2 = 0x0202020202020202ull;
    const uint64_t e3 = 0x0303030303030303ull;

    std::vector<uint8_t> w0(64, 0), w1(64, 0);
    std::memcpy(w0.data(), &e1, 8);      // e1 only in way 0
    std::memcpy(w1.data() + 8, &e2, 8);  // e2 only in way 1
    std::memcpy(w0.data() + 16, &e3, 8); // e3 in both
    std::memcpy(w1.data() + 24, &e3, 8);

    const std::vector<MemoryImage> ways{MemoryImage(w0), MemoryImage(w1)};
    const std::vector<uint64_t> elements{e1, e2, e3,
                                         0x0404040404040404ull};
    const ElementRecovery er = recoverElements(ways, elements);
    EXPECT_EQ(er.total, 4u);
    EXPECT_EQ(er.per_way[0], 2u);
    EXPECT_EQ(er.per_way[1], 2u);
    EXPECT_EQ(er.in_union, 3u);
    EXPECT_DOUBLE_EQ(er.fractionRecovered(), 0.75);
}

TEST(Analysis, TextTableRendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Analysis, TextTableFormatters)
{
    EXPECT_EQ(TextTable::pct(0.91634), "91.63%");
    EXPECT_EQ(TextTable::pct(1.0, 1), "100.0%");
    EXPECT_EQ(TextTable::num(373.04), "373.0");
    EXPECT_EQ(TextTable::hex(0xF8000000ull), "0xF8000000");
}

TEST(Analysis, ReconstructTagRamDecodesEntries)
{
    // Build a tag dump by hand for a 2-way, 4-set, 64B-line cache.
    const CacheGeometry geom{2 * 4 * 64, 2, 64};
    std::vector<uint8_t> dump(2 * 4 * 8, 0);
    auto put = [&](size_t way, size_t set, uint64_t entry) {
        for (int b = 0; b < 8; ++b)
            dump[(way * 4 + set) * 8 + b] =
                static_cast<uint8_t>(entry >> (8 * b));
    };
    // addr 0x1040 -> offset 0x00, set 1, tag 0x10. Valid+dirty.
    put(0, 1, 0x10 | Cache::kFlagValid | Cache::kFlagDirty);
    // addr 0x2080 -> set 2, tag 0x20. Valid+locked, non-secure.
    put(1, 2, 0x20 | Cache::kFlagValid | Cache::kFlagLocked |
                  Cache::kFlagNonSecure);
    // An invalid entry with garbage tag.
    put(1, 3, 0x3F);

    const auto lines = reconstructTagRam(MemoryImage(dump), geom);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].phys_addr, (0x10ull << 8) | (1u << 6));
    EXPECT_TRUE(lines[0].dirty);
    EXPECT_TRUE(lines[0].secure);
    EXPECT_EQ(lines[1].phys_addr, (0x20ull << 8) | (2u << 6));
    EXPECT_TRUE(lines[1].locked);
    EXPECT_FALSE(lines[1].secure);

    const auto all =
        reconstructTagRam(MemoryImage(dump), geom, true);
    EXPECT_EQ(all.size(), 8u);
}

TEST(Analysis, LineContentIndexesWayMajorDumps)
{
    const CacheGeometry geom{2 * 4 * 64, 2, 64};
    std::vector<uint8_t> data(geom.size_bytes, 0);
    // way 1, set 2 in way-major layout starts at (1*4+2)*64.
    data[(1 * 4 + 2) * 64 + 5] = 0xAB;
    CachedLineInfo line;
    line.way = 1;
    line.set = 2;
    const MemoryImage content =
        lineContent(line, MemoryImage(data), geom);
    EXPECT_EQ(content.sizeBytes(), 64u);
    EXPECT_EQ(content.byteAt(5), 0xAB);
}

TEST(Countermeasures, ApplyTogglesTheRightKnobs)
{
    const SocConfig base = SocConfig::bcm2711();
    EXPECT_TRUE(applyCountermeasure(base, Countermeasure::BootSramReset)
                    .boot_sram_reset);
    EXPECT_TRUE(applyCountermeasure(base, Countermeasure::TrustZone)
                    .trustzone_enforced);
    EXPECT_TRUE(
        applyCountermeasure(base, Countermeasure::AuthenticatedBoot)
            .authenticated_boot);
    const SocConfig merged = applyCountermeasure(
        base, Countermeasure::EliminateDomainSeparation);
    EXPECT_TRUE(merged.attack_pad.empty());
}

TEST(Countermeasures, BaselineAttackSucceeds)
{
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::None);
    EXPECT_TRUE(r.attack_succeeded);
    EXPECT_GT(r.recovered_fraction, 0.999);
}

TEST(Countermeasures, PurgeOnShutdownFailsAgainstAbruptCut)
{
    // The purge hook never runs when the attacker pulls the plug.
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::PurgeOnShutdown,
        /*orderly_shutdown=*/false);
    EXPECT_TRUE(r.attack_succeeded);
}

TEST(Countermeasures, PurgeOnShutdownWorksWhenOrderly)
{
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::PurgeOnShutdown,
        /*orderly_shutdown=*/true);
    EXPECT_FALSE(r.attack_succeeded);
}

TEST(Countermeasures, BootSramResetDefeatsTheAttack)
{
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::BootSramReset);
    EXPECT_FALSE(r.attack_succeeded);
    EXPECT_LT(r.recovered_fraction, 0.9);
}

TEST(Countermeasures, TrustZoneBlocksSecureLines)
{
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::TrustZone);
    EXPECT_FALSE(r.attack_succeeded);
}

TEST(Countermeasures, AuthenticatedBootBlocksReboot)
{
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::AuthenticatedBoot);
    EXPECT_FALSE(r.attack_succeeded);
    EXPECT_NE(r.notes.find("authenticated"), std::string::npos);
}

TEST(Countermeasures, MergedDomainsLeaveNothingToProbe)
{
    const CountermeasureResult r = evaluateCountermeasure(
        SocConfig::bcm2711(), Countermeasure::EliminateDomainSeparation);
    EXPECT_FALSE(r.attack_succeeded);
}

TEST(Countermeasures, SurveyCoversAllDefences)
{
    const auto rows = surveyCountermeasures(SocConfig::bcm2711());
    ASSERT_EQ(rows.size(), 6u);
    // Only the no-defence and the purge-against-plug-pull rows succeed.
    int successes = 0;
    for (const auto &row : rows)
        successes += row.attack_succeeded;
    EXPECT_EQ(successes, 2);
}

} // namespace
} // namespace voltboot

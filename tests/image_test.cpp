/**
 * @file
 * Tests for MemoryImage: Hamming metrics, block profiles, pattern search,
 * element recovery and image export.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sram/memory_image.hh"

namespace voltboot
{
namespace
{

TEST(MemoryImage, PopcountAndDensity)
{
    MemoryImage img({0xFF, 0x00, 0x0F});
    EXPECT_EQ(img.popcount(), 12u);
    EXPECT_DOUBLE_EQ(img.onesDensity(), 12.0 / 24.0);
}

TEST(MemoryImage, BitAtIsLsbFirst)
{
    MemoryImage img({0x01, 0x80});
    EXPECT_TRUE(img.bitAt(0));
    EXPECT_FALSE(img.bitAt(1));
    EXPECT_FALSE(img.bitAt(8));
    EXPECT_TRUE(img.bitAt(15));
    EXPECT_THROW(img.bitAt(16), PanicError);
}

TEST(MemoryImage, HammingDistance)
{
    MemoryImage a({0xFF, 0x00});
    MemoryImage b({0x0F, 0x00});
    EXPECT_EQ(MemoryImage::hammingDistance(a, b), 4u);
    EXPECT_DOUBLE_EQ(MemoryImage::fractionalHamming(a, b), 0.25);
    EXPECT_EQ(MemoryImage::hammingDistance(a, a), 0u);
}

TEST(MemoryImage, HammingRequiresEqualSizes)
{
    MemoryImage a({1, 2}), b({1});
    EXPECT_THROW(MemoryImage::hammingDistance(a, b), PanicError);
}

TEST(MemoryImage, BlockHammingProfile)
{
    // 4 blocks of 8 bytes: errors only in block 2.
    std::vector<uint8_t> x(32, 0), y(32, 0);
    y[16] = 0xFF;
    y[17] = 0x01;
    const auto profile = MemoryImage::blockHamming(
        MemoryImage(x), MemoryImage(y), 64);
    ASSERT_EQ(profile.size(), 4u);
    EXPECT_EQ(profile[0], 0u);
    EXPECT_EQ(profile[1], 0u);
    EXPECT_EQ(profile[2], 9u);
    EXPECT_EQ(profile[3], 0u);
}

TEST(MemoryImage, BlockHammingRejectsBadGranularity)
{
    MemoryImage a({0}), b({0});
    EXPECT_THROW(MemoryImage::blockHamming(a, b, 7), FatalError);
    EXPECT_THROW(MemoryImage::blockHamming(a, b, 0), FatalError);
}

TEST(MemoryImage, FindAllLocatesPatterns)
{
    MemoryImage img({1, 2, 3, 1, 2, 3, 1, 2});
    const std::vector<uint8_t> needle{1, 2, 3};
    const auto hits = img.findAll(needle);
    EXPECT_EQ(hits, (std::vector<size_t>{0, 3}));
    EXPECT_TRUE(img.contains(needle));
    const std::vector<uint8_t> absent{9, 9};
    EXPECT_FALSE(img.contains(absent));
}

TEST(MemoryImage, FindAllHandlesOverlaps)
{
    MemoryImage img({7, 7, 7, 7});
    const std::vector<uint8_t> needle{7, 7};
    EXPECT_EQ(img.findAll(needle).size(), 3u);
}

TEST(MemoryImage, CountRecoveredElements)
{
    std::vector<uint8_t> bytes(32, 0);
    const uint64_t e1 = 0x1122334455667788ull;
    const uint64_t e2 = 0xAABBCCDDEEFF0011ull;
    memcpy(bytes.data() + 8, &e1, 8);
    MemoryImage img(bytes);
    const std::vector<uint64_t> elements{e1, e2};
    EXPECT_EQ(img.countRecoveredElements(elements), 1u);
}

TEST(MemoryImage, SliceAndEntropy)
{
    MemoryImage img({0, 0, 0, 0, 1, 2, 3, 4});
    const MemoryImage tail = img.slice(4, 4);
    EXPECT_EQ(tail.bytes(), (std::vector<uint8_t>{1, 2, 3, 4}));
    EXPECT_THROW(img.slice(6, 4), PanicError);
    EXPECT_DOUBLE_EQ(MemoryImage::filled(16, 0xAA).byteEntropy(), 0.0);
    EXPECT_EQ(tail.byteEntropy(), 2.0); // four distinct bytes
}

TEST(MemoryImage, PbmExport)
{
    MemoryImage img({0x03}); // bits 0,1 set
    const std::string pbm = img.toPbm(8);
    EXPECT_EQ(pbm.rfind("P1\n8 1\n", 0), 0u);
    EXPECT_NE(pbm.find("1 1 0 0 0 0 0 0"), std::string::npos);
}

TEST(MemoryImage, PgmExport)
{
    MemoryImage img({0, 128, 255, 64});
    const std::string pgm = img.toPgm(2);
    EXPECT_EQ(pgm.rfind("P2\n2 2\n255\n", 0), 0u);
    EXPECT_NE(pgm.find("0 128"), std::string::npos);
    EXPECT_NE(pgm.find("255 64"), std::string::npos);
}

TEST(MemoryImage, HexdumpTruncates)
{
    MemoryImage img(std::vector<uint8_t>(64, 0xCD));
    const std::string dump = img.hexdump(16);
    EXPECT_NE(dump.find("cd cd"), std::string::npos);
    EXPECT_NE(dump.find("more bytes"), std::string::npos);
}

TEST(MemoryImage, EmptyImageIsSane)
{
    MemoryImage img;
    EXPECT_TRUE(img.empty());
    EXPECT_DOUBLE_EQ(img.onesDensity(), 0.0);
    EXPECT_DOUBLE_EQ(img.byteEntropy(), 0.0);
    const std::vector<uint8_t> needle{1};
    EXPECT_FALSE(img.contains(needle));
}

} // namespace
} // namespace voltboot

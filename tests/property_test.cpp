/**
 * @file
 * Property-based tests pitting components against independent reference
 * models:
 *
 *  - the cache hierarchy against a flat golden memory, under long random
 *    access sequences interleaved with maintenance operations;
 *  - the assembler against its disassembler (round-trip on random
 *    instruction streams);
 *  - the attack's end-to-end determinism (same seed, same dump).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/attack.hh"
#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

namespace voltboot
{
namespace
{

/** Cache + SRAM backing + flat DRAM, plus a golden std::map model. */
class GoldenHarness
{
  public:
    explicit GoldenHarness(CacheGeometry geom, uint64_t seed)
        : geom_(geom), data_("d", geom.size_bytes, seed, 1),
          tags_("t", Cache::tagRamBytes(geom), seed, 2),
          mem_("m", 1 << 20, seed, 3), region_(mem_, 0),
          cache_("c", geom, data_, tags_, &region_)
    {
        data_.powerUp(Volt(0.8));
        tags_.powerUp(Volt(0.8));
        mem_.powerUp(Volt(1.1));
        // Give memory a known base state and mirror it in the model.
        for (uint64_t a = 0; a + 8 <= mem_.sizeBytes(); a += 8) {
            const uint64_t v = splitmix64(seed ^ a);
            mem_.writeWord64(a, v);
        }
        cache_.invalidateAll();
        cache_.setEnabled(true);
    }

    uint64_t
    goldenRead(uint64_t addr)
    {
        auto it = model_.find(addr);
        if (it != model_.end())
            return it->second;
        return splitmix64(seed() ^ addr);
    }

    void goldenWrite(uint64_t addr, uint64_t v) { model_[addr] = v; }
    uint64_t seed() const { return seed_; }

    CacheGeometry geom_;
    SramArray data_, tags_;
    DramArray mem_;
    MemoryRegion region_;
    Cache cache_;
    std::map<uint64_t, uint64_t> model_;
    uint64_t seed_ = 0;
};

class CacheGoldenSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>>
{
};

TEST_P(CacheGoldenSweep, RandomOpsMatchFlatModel)
{
    const auto [size, ways, seed] = GetParam();
    GoldenHarness h(CacheGeometry{size, ways, 64}, seed);
    h.seed_ = seed;
    // Re-seed the golden model's backing view.
    for (uint64_t a = 0; a + 8 <= h.mem_.sizeBytes(); a += 8)
        h.goldenWrite(a, splitmix64(seed ^ a));

    Rng rng(seed * 31 + 7);
    const uint64_t addr_space = 256 * 1024; // 8x larger than any cache
    for (int op = 0; op < 20000; ++op) {
        const uint64_t addr = (rng.below(addr_space / 8)) * 8;
        switch (rng.below(8)) {
          case 0:
          case 1:
          case 2: { // read
            ASSERT_EQ(h.cache_.read64(addr, true), h.goldenRead(addr))
                << "op " << op << " addr " << addr;
            break;
          }
          case 3:
          case 4:
          case 5: { // write
            const uint64_t v = rng.next();
            h.cache_.write64(addr, v, true);
            h.goldenWrite(addr, v);
            break;
          }
          case 6: { // clean+invalidate a line
            h.cache_.cleanInvalidate(addr);
            break;
          }
          default: { // zero a line (both worlds)
            h.cache_.zeroLine(addr);
            const uint64_t line = addr & ~63ull;
            for (uint64_t a = line; a < line + 64; a += 8)
                h.goldenWrite(a, 0);
            break;
          }
        }
    }
    // Final flush: everything dirty lands in memory; compare wholesale.
    h.cache_.cleanAll();
    for (uint64_t a = 0; a < addr_space; a += 8)
        ASSERT_EQ(h.mem_.readWord64(a), h.goldenRead(a)) << "addr " << a;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGoldenSweep,
    ::testing::Values(std::make_tuple(4096, 1, 1ull),
                      std::make_tuple(8192, 2, 2ull),
                      std::make_tuple(32768, 2, 3ull),
                      std::make_tuple(32768, 4, 4ull),
                      std::make_tuple(16384, 8, 5ull)));

/** Random well-formed instruction generator for round-trip fuzzing. */
std::string
randomProgram(Rng &rng, size_t lines)
{
    std::ostringstream os;
    auto reg = [&] { return "x" + std::to_string(rng.below(31)); };
    auto vreg = [&] { return "v" + std::to_string(rng.below(32)); };
    for (size_t i = 0; i < lines; ++i) {
        switch (rng.below(12)) {
          case 0:
            os << "    nop\n";
            break;
          case 1:
            os << "    movz " << reg() << ", #" << rng.below(0x10000)
               << ", lsl #" << 16 * rng.below(4) << "\n";
            break;
          case 2:
            os << "    movk " << reg() << ", #" << rng.below(0x10000)
               << "\n";
            break;
          case 3:
            os << "    add " << reg() << ", " << reg() << ", #"
               << rng.below(0x1000) << "\n";
            break;
          case 4:
            os << "    sub " << reg() << ", " << reg() << ", " << reg()
               << "\n";
            break;
          case 5:
            os << "    eor " << reg() << ", " << reg() << ", " << reg()
               << "\n";
            break;
          case 6:
            os << "    ldr " << reg() << ", [" << reg() << ", #"
               << rng.below(512) * 8 << "]\n";
            break;
          case 7:
            os << "    str " << reg() << ", [" << reg() << "]\n";
            break;
          case 8:
            os << "    cmp " << reg() << ", #" << rng.below(0x1000)
               << "\n";
            break;
          case 9:
            os << "    vdup " << vreg() << ", #" << rng.below(256)
               << "\n";
            break;
          case 10:
            os << "    vread " << reg() << ", " << vreg() << "["
               << rng.below(2) << "]\n";
            break;
          default:
            os << "    lsl " << reg() << ", " << reg() << ", #"
               << rng.below(64) << "\n";
            break;
        }
    }
    os << "    hlt\n";
    return os.str();
}

class AssemblerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AssemblerFuzz, DisassembleReassembleIsIdentity)
{
    Rng rng(GetParam());
    const std::string source = randomProgram(rng, 200);
    const Program first = Assembler::assemble(source);

    // Disassemble every word and reassemble the listing; the encodings
    // must survive the round trip exactly.
    std::ostringstream listing;
    for (uint32_t w : first.words)
        listing << "    " << disassemble(w) << "\n";
    const Program second = Assembler::assemble(listing.str());
    ASSERT_EQ(second.words.size(), first.words.size());
    for (size_t i = 0; i < first.words.size(); ++i)
        ASSERT_EQ(second.words[i], first.words[i])
            << "insn " << i << ": " << disassemble(first.words[i])
            << " vs " << disassemble(second.words[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/**
 * Power-state machine fuzz: random legal sequences of power operations
 * must never crash, and two invariants must hold throughout —
 * (1) a domain held at nominal voltage never loses data;
 * (2) any content surviving operations is either the written pattern or
 *     the power-up resolution, never garbage from out of the model.
 */
class PowerStateFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PowerStateFuzz, RandomOperationSequences)
{
    Rng rng(GetParam());
    SramArray a("fuzz", 1024, GetParam(), 1);
    a.powerUp(Volt(0.8));
    a.fill(0x5A);
    bool held_high = true; // never dipped below drv_max since last fill

    for (int op = 0; op < 200; ++op) {
        switch (rng.below(6)) {
          case 0: // power cycle, random off-time and temperature
            if (a.powerState() != PowerState::Off)
                a.powerDown();
            a.powerUp(Volt(0.8),
                      Seconds::milliseconds(rng.uniform() * 100),
                      Temperature::celsius(-120 + rng.uniform() * 150));
            held_high = false;
            break;
          case 1: // probe-held retention at nominal
            if (a.powerState() == PowerState::Powered) {
                a.retainAt(Volt(0.8));
                a.resumePowered(Volt(0.8));
            }
            break;
          case 2: // droop to a random level
            if (a.powerState() == PowerState::Powered) {
                const double v = rng.uniform();
                a.droopTo(Volt(v));
                if (v < 0.56)
                    held_high = false;
            }
            break;
          case 3: // rewrite the pattern
            if (a.powerState() == PowerState::Powered) {
                a.fill(0x5A);
                held_high = true;
            }
            break;
          case 4: // reads must never throw while powered
            if (a.powerState() == PowerState::Powered)
                (void)a.readWord64((rng.below(128)) * 8);
            break;
          default: // unpowered dwell
            if (a.powerState() != PowerState::Off) {
                a.powerDown();
                a.powerUp(Volt(0.8), Seconds::microseconds(1),
                          Temperature::celsius(-120));
            }
            break;
        }
        if (a.powerState() == PowerState::Powered && held_high) {
            // Invariant (1): nothing above the DRV ceiling flips.
            for (size_t i = 0; i < 16; ++i)
                ASSERT_EQ(a.readByte(i * 64), 0x5A) << "op " << op;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerStateFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(Determinism, SameSeedSameAttackDump)
{
    auto run = [] {
        Soc soc(SocConfig::bcm2711());
        soc.powerOn();
        BareMetalRunner runner(soc);
        runner.runOn(0, workloads::patternStore(0x40000, 4096, 0xA7));
        VoltBootAttack attack(soc);
        attack.execute();
        return attack.dumpL1(0, L1Ram::DData).bytes();
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, DifferentChipSeedsDifferentFingerprints)
{
    auto fingerprint = [](uint64_t seed) {
        SocConfig cfg = SocConfig::bcm2711();
        cfg.chip_seed = seed;
        Soc soc(cfg);
        soc.powerOn();
        return soc.memory().l1d(0).dumpAll().bytes();
    };
    EXPECT_NE(fingerprint(1), fingerprint(2));
}

} // namespace
} // namespace voltboot

/**
 * @file
 * Tests for the cache model: geometry, hit/miss/eviction behaviour, LRU,
 * write-back, maintenance semantics (the Section 5.2.4 properties),
 * locking, TrustZone bits, and the debug (RAMINDEX) view.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sram/memory_array.hh"

namespace voltboot
{
namespace
{

/** A cache + SRAM backing + flat memory, ready to use. */
class CacheHarness
{
  public:
    explicit CacheHarness(CacheGeometry geom = CacheGeometry{4096, 2, 64})
        : geom_(geom),
          data_("data", geom.size_bytes, 1, 50),
          tags_("tags", Cache::tagRamBytes(geom), 1, 51),
          backing_store_("mem", 1 << 20, 1, 52),
          region_(backing_store_, 0),
          cache_("L1D", geom, data_, tags_, &region_)
    {
        data_.powerUp(Volt(0.8));
        tags_.powerUp(Volt(0.8));
        backing_store_.powerUp(Volt(1.1));
        // Boot procedure: invalidate garbage tags, then enable.
        cache_.invalidateAll();
        cache_.setEnabled(true);
    }

    CacheGeometry geom_;
    SramArray data_, tags_;
    DramArray backing_store_;
    MemoryRegion region_;
    Cache cache_;
};

TEST(CacheGeometry, SetsComputation)
{
    const CacheGeometry g{32 * 1024, 2, 64};
    EXPECT_EQ(g.sets(), 256u);
    EXPECT_EQ(Cache::tagRamBytes(g), 256u * 2 * 8);
}

TEST(Cache, RejectsBadGeometry)
{
    SramArray d("d", 4096, 1, 1), t("t", 1024, 1, 2);
    d.powerUp(Volt(0.8));
    t.powerUp(Volt(0.8));
    EXPECT_THROW(Cache("c", CacheGeometry{4096, 0, 64}, d, t, nullptr),
                 FatalError);
    EXPECT_THROW(Cache("c", CacheGeometry{4096, 2, 7}, d, t, nullptr),
                 FatalError);
    EXPECT_THROW(Cache("c", CacheGeometry{5000, 2, 64}, d, t, nullptr),
                 FatalError);
}

TEST(Cache, ReadMissFillsFromBacking)
{
    CacheHarness h;
    h.backing_store_.writeWord64(0x100, 0xfeedface12345678ull);
    EXPECT_EQ(h.cache_.read64(0x100, true), 0xfeedface12345678ull);
    EXPECT_EQ(h.cache_.stats().misses, 1u);
    // Second read hits.
    EXPECT_EQ(h.cache_.read64(0x100, true), 0xfeedface12345678ull);
    EXPECT_EQ(h.cache_.stats().hits, 1u);
    EXPECT_TRUE(h.cache_.probeHit(0x100));
}

TEST(Cache, WriteBackOnlyReachesMemoryOnEviction)
{
    CacheHarness h;
    h.cache_.write64(0x200, 0xaaaaaaaaaaaaaaaaull, true);
    // Dirty in cache; memory still has its old (power-up) value.
    EXPECT_NE(h.backing_store_.readWord64(0x200), 0xaaaaaaaaaaaaaaaaull);
    // Force eviction: touch two more lines mapping to the same set.
    const uint64_t set_stride = h.geom_.sets() * h.geom_.line_bytes;
    h.cache_.read64(0x200 + set_stride, true);
    h.cache_.read64(0x200 + 2 * set_stride, true);
    h.cache_.read64(0x200 + 3 * set_stride, true);
    EXPECT_EQ(h.backing_store_.readWord64(0x200), 0xaaaaaaaaaaaaaaaaull);
    EXPECT_GE(h.cache_.stats().writebacks, 1u);
}

TEST(Cache, LruEvictsOldest)
{
    CacheHarness h; // 2 ways
    const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
    h.cache_.read64(0x0, true);          // way A
    h.cache_.read64(stride, true);       // way B
    h.cache_.read64(0x0, true);          // touch A (B now LRU)
    h.cache_.read64(2 * stride, true);   // evicts B
    EXPECT_TRUE(h.cache_.probeHit(0x0));
    EXPECT_FALSE(h.cache_.probeHit(stride));
    EXPECT_TRUE(h.cache_.probeHit(2 * stride));
}

TEST(Cache, ByteAccessesComposeWithWords)
{
    CacheHarness h;
    h.cache_.write64(0x300, 0, true);
    h.cache_.write8(0x301, 0xAB, true);
    h.cache_.write8(0x307, 0xCD, true);
    EXPECT_EQ(h.cache_.read64(0x300, true), 0xCD0000000000AB00ull);
    EXPECT_EQ(h.cache_.read8(0x301, true), 0xABu);
}

TEST(Cache, UnalignedWordAccessPanics)
{
    CacheHarness h;
    EXPECT_THROW(h.cache_.read64(0x301, true), PanicError);
    EXPECT_THROW(h.cache_.write64(0x303, 0, true), PanicError);
}

TEST(Cache, InvalidateAllClearsTagsNotData)
{
    CacheHarness h;
    h.cache_.write64(0x400, 0x5a5a5a5a5a5a5a5aull, true);
    // Find which way holds it via the debug tag view.
    const size_t set = (0x400 / 64) % h.geom_.sets();
    h.cache_.invalidateAll();
    EXPECT_FALSE(h.cache_.probeHit(0x400));
    // Section 5.2.4: "the data remains unchanged" — the word is still
    // in the data RAM of one of the ways.
    bool found = false;
    for (size_t way = 0; way < h.geom_.ways && !found; ++way)
        found = h.cache_.debugReadDataWord(way, set, 0) ==
                0x5a5a5a5a5a5a5a5aull;
    EXPECT_TRUE(found);
}

TEST(Cache, CleanInvalidateWritesBackFirst)
{
    CacheHarness h;
    h.cache_.write64(0x500, 0x1111222233334444ull, true);
    h.cache_.cleanInvalidate(0x500);
    EXPECT_FALSE(h.cache_.probeHit(0x500));
    EXPECT_EQ(h.backing_store_.readWord64(0x500),
              0x1111222233334444ull);
}

TEST(Cache, DcZvaIsTheOnlySoftwareErasePath)
{
    CacheHarness h;
    h.cache_.write64(0x600, 0x9999999999999999ull, true);
    const size_t set = (0x600 / 64) % h.geom_.sets();
    h.cache_.zeroLine(0x600);
    EXPECT_EQ(h.cache_.read64(0x600, true), 0u);
    // The data RAM itself now holds zeros in the resident way.
    bool zeroed = false;
    for (size_t way = 0; way < h.geom_.ways && !zeroed; ++way)
        zeroed = h.cache_.debugReadDataWord(way, set, 0) == 0;
    EXPECT_TRUE(zeroed);
}

TEST(Cache, CleanAllFlushesEveryDirtyLine)
{
    CacheHarness h;
    for (uint64_t a = 0; a < 1024; a += 64)
        h.cache_.write64(a, 0xD0D0000000000000ull | a, true);
    h.cache_.cleanAll();
    for (uint64_t a = 0; a < 1024; a += 64)
        EXPECT_EQ(h.backing_store_.readWord64(a),
                  0xD0D0000000000000ull | a);
    // Lines stay resident after a clean (no invalidate).
    EXPECT_TRUE(h.cache_.probeHit(0));
}

TEST(Cache, LockedLinesAreNeverEvicted)
{
    CacheHarness h; // 2 ways
    const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
    h.cache_.write64(0x0, 0xCAFEull, true);
    h.cache_.lockLine(0x0);
    // Hammer the set with conflicting lines.
    for (int i = 1; i <= 8; ++i)
        h.cache_.read64(i * stride, true);
    EXPECT_TRUE(h.cache_.probeHit(0x0));
    EXPECT_EQ(h.cache_.read64(0x0, true), 0xCAFEull);
}

TEST(Cache, FullyLockedSetRejectsAllocation)
{
    CacheHarness h; // 2 ways
    const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
    h.cache_.write64(0x0, 1, true);
    h.cache_.lockLine(0x0);
    h.cache_.write64(stride, 2, true);
    h.cache_.lockLine(stride);
    EXPECT_THROW(h.cache_.read64(2 * stride, true), FatalError);
    h.cache_.unlockAll();
    EXPECT_EQ(h.cache_.read64(2 * stride, true),
              h.backing_store_.readWord64(2 * stride));
}

TEST(Cache, LockLineRequiresResidency)
{
    CacheHarness h;
    EXPECT_THROW(h.cache_.lockLine(0x7000), FatalError);
}

TEST(Cache, DisabledCachePassesThrough)
{
    CacheHarness h;
    h.cache_.setEnabled(false);
    h.cache_.write64(0x700, 0x77ull, true);
    // Straight to memory, nothing cached.
    EXPECT_EQ(h.backing_store_.readWord64(0x700), 0x77ull);
    EXPECT_FALSE(h.cache_.probeHit(0x700));
    EXPECT_EQ(h.cache_.read64(0x700, true), 0x77ull);
    EXPECT_EQ(h.cache_.stats().misses, 0u);
}

TEST(Cache, DebugViewIgnoresValidBits)
{
    CacheHarness h;
    h.cache_.write64(0x800, 0xABCDull, true);
    h.cache_.invalidateAll();
    const size_t set = (0x800 / 64) % h.geom_.sets();
    bool found = false;
    for (size_t way = 0; way < h.geom_.ways && !found; ++way)
        found = h.cache_.debugReadDataWord(way, set, 0) == 0xABCDull;
    EXPECT_TRUE(found) << "RAMINDEX must see invalidated lines";
}

TEST(Cache, DebugReadOutOfRangePanics)
{
    CacheHarness h;
    EXPECT_THROW(h.cache_.debugReadDataWord(9, 0, 0), PanicError);
    EXPECT_THROW(h.cache_.debugReadDataWord(0, 1 << 20, 0), PanicError);
    EXPECT_THROW(h.cache_.debugReadTagEntry(0, 1 << 20), PanicError);
}

TEST(Cache, TrustZoneBlocksSecureLinesOnDebugRead)
{
    CacheHarness h;
    h.cache_.write64(0x900, 0x5EC12E7ull, true); // secure access
    h.cache_.write64(0xA00, 0x0FE2ull, false);   // non-secure access
    const size_t set_s = (0x900 / 64) % h.geom_.sets();
    const size_t set_ns = (0xA00 / 64) % h.geom_.sets();

    bool violation = false;
    bool secure_readable = false, ns_readable = false;
    for (size_t way = 0; way < h.geom_.ways; ++way) {
        if (h.cache_.debugReadDataWord(way, set_s, 0, true, &violation) ==
            0x5EC12E7ull)
            secure_readable = true;
        if (h.cache_.debugReadDataWord(way, set_ns, 0, true) == 0x0FE2ull)
            ns_readable = true;
    }
    EXPECT_FALSE(secure_readable);
    EXPECT_TRUE(violation);
    EXPECT_TRUE(ns_readable);
    // Without enforcement, everything reads.
    bool open_readable = false;
    for (size_t way = 0; way < h.geom_.ways; ++way)
        if (h.cache_.debugReadDataWord(way, set_s, 0, false) ==
            0x5EC12E7ull)
            open_readable = true;
    EXPECT_TRUE(open_readable);
}

TEST(Cache, DumpWayHasWayMajorLayout)
{
    CacheHarness h;
    h.cache_.write64(0x0, 0x1ull, true);
    const MemoryImage way0 = h.cache_.dumpWay(0);
    EXPECT_EQ(way0.sizeBytes(), h.geom_.sets() * h.geom_.line_bytes);
    const MemoryImage all = h.cache_.dumpAll();
    EXPECT_EQ(all.sizeBytes(), h.geom_.size_bytes);
}

TEST(Cache, StatsTrackEvictions)
{
    CacheHarness h;
    const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
    for (int i = 0; i < 4; ++i)
        h.cache_.read64(i * stride, true);
    EXPECT_EQ(h.cache_.stats().misses, 4u);
    EXPECT_EQ(h.cache_.stats().evictions, 2u); // 2-way set overflows twice
    h.cache_.clearStats();
    EXPECT_EQ(h.cache_.stats().misses, 0u);
}

TEST(Cache, RoundRobinCyclesThroughWays)
{
    CacheHarness h(CacheGeometry{4096, 2, 64, ReplacementPolicy::RoundRobin});
    const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
    h.cache_.read64(0 * stride, true); // way 0 (invalid-first)
    h.cache_.read64(1 * stride, true); // way 1
    h.cache_.read64(2 * stride, true); // evicts way 0
    EXPECT_FALSE(h.cache_.probeHit(0 * stride));
    EXPECT_TRUE(h.cache_.probeHit(1 * stride));
    h.cache_.read64(3 * stride, true); // evicts way 1
    EXPECT_FALSE(h.cache_.probeHit(1 * stride));
    EXPECT_TRUE(h.cache_.probeHit(2 * stride));
}

TEST(Cache, RandomPolicyIsDeterministicPerInstance)
{
    auto run = [] {
        CacheHarness h(
            CacheGeometry{4096, 4, 64, ReplacementPolicy::Random});
        const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
        std::vector<bool> alive;
        for (int i = 0; i < 12; ++i)
            h.cache_.read64(i * stride, true);
        for (int i = 0; i < 12; ++i)
            alive.push_back(h.cache_.probeHit(i * stride));
        return alive;
    };
    EXPECT_EQ(run(), run()); // same LFSR seed, same evictions
    // Exactly 4 survivors in the 4-way set.
    const auto alive = run();
    EXPECT_EQ(std::count(alive.begin(), alive.end(), true), 4);
}

TEST(Cache, RandomPolicyRespectsLocks)
{
    CacheHarness h(CacheGeometry{4096, 2, 64, ReplacementPolicy::Random});
    const uint64_t stride = h.geom_.sets() * h.geom_.line_bytes;
    h.cache_.write64(0, 0xCAFE, true);
    h.cache_.lockLine(0);
    for (int i = 1; i <= 16; ++i)
        h.cache_.read64(i * stride, true);
    EXPECT_TRUE(h.cache_.probeHit(0));
    EXPECT_EQ(h.cache_.read64(0, true), 0xCAFEull);
}

TEST(Cache, DebugScrambleModelsUndocumentedBitOrder)
{
    CacheHarness h;
    h.cache_.write64(0xB00, 0x123456789ABCDEF0ull, true);
    const size_t set = (0xB00 / 64) % h.geom_.sets();

    // Find the resident way with the documented order first.
    size_t way = SIZE_MAX;
    for (size_t w = 0; w < h.geom_.ways; ++w)
        if (h.cache_.debugReadDataWord(w, set, 0) ==
            0x123456789ABCDEF0ull)
            way = w;
    ASSERT_NE(way, SIZE_MAX);

    h.cache_.setDebugScramble(0x2837);
    EXPECT_TRUE(h.cache_.debugScrambled());
    const uint64_t scrambled = h.cache_.debugReadDataWord(way, set, 0);
    // A permutation: different bit order, same popcount, and stable.
    EXPECT_NE(scrambled, 0x123456789ABCDEF0ull);
    EXPECT_EQ(std::popcount(scrambled),
              std::popcount(0x123456789ABCDEF0ull));
    EXPECT_EQ(h.cache_.debugReadDataWord(way, set, 0), scrambled);

    // The CPU-side read path is unaffected (only the debug view is
    // physically interleaved).
    EXPECT_EQ(h.cache_.read64(0xB00, true), 0x123456789ABCDEF0ull);

    h.cache_.setDebugScramble(0);
    EXPECT_EQ(h.cache_.debugReadDataWord(way, set, 0),
              0x123456789ABCDEF0ull);
}

// --- RamIndexDescriptor ---

TEST(RamIndexDescriptor, EncodeDecodeRoundTrip)
{
    for (unsigned ram : {0u, 1u, 2u, 3u}) {
        for (size_t way : {0u, 1u, 3u}) {
            for (size_t set : {0u, 255u, 4095u}) {
                for (size_t word : {0u, 7u}) {
                    const RamIndexDescriptor d{ram, way, set, word};
                    const RamIndexDescriptor back =
                        RamIndexDescriptor::decode(d.encode());
                    EXPECT_EQ(back.ram_id, ram);
                    EXPECT_EQ(back.way, way);
                    EXPECT_EQ(back.set, set);
                    EXPECT_EQ(back.word, word);
                }
            }
        }
    }
}

// --- Geometry sweep: fills work at every shape ---

class CacheShapeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>>
{
};

TEST_P(CacheShapeSweep, FillReadBackEverywhere)
{
    const auto [size, ways, line] = GetParam();
    CacheHarness h(CacheGeometry{size, ways, line});
    // Write a distinct word to the first word of each line of a region
    // the size of the cache, then read everything back.
    for (uint64_t a = 0; a < size; a += line)
        h.cache_.write64(a, 0xF00D000000000000ull | a, true);
    for (uint64_t a = 0; a < size; a += line)
        ASSERT_EQ(h.cache_.read64(a, true), 0xF00D000000000000ull | a);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheShapeSweep,
    ::testing::Values(std::make_tuple(4096, 1, 64),
                      std::make_tuple(4096, 2, 64),
                      std::make_tuple(8192, 4, 64),
                      std::make_tuple(16384, 2, 32),
                      std::make_tuple(32768, 2, 64),
                      std::make_tuple(32768, 4, 128),
                      std::make_tuple(49152, 3, 64)));

} // namespace
} // namespace voltboot

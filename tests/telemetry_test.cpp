/**
 * @file
 * Telemetry-layer tests: the production half of the observability
 * loop. Covers the lock-free counter blocks (no-op without a
 * WorkerScope, monotonic totals across scope churn, multithreaded
 * sums, hash-stat draining), the campaign monitor (heartbeat schema
 * round trip through the report-layer reader, /progress per-axis
 * decode, /metrics snapshot naming), and the embedded HTTP server
 * (ephemeral-port bind, routing, query-string stripping, 404/405).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "report/heartbeat.hh"
#include "report/json.hh"
#include "report/prometheus.hh"
#include "telemetry/counters.hh"
#include "telemetry/http_server.hh"
#include "telemetry/monitor.hh"

using namespace voltboot;
using telemetry::Counter;

namespace
{

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("voltboot_telemetry_" + name))
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Minimal HTTP/1.0 GET client for exercising the embedded server. */
std::string
httpGet(uint16_t port, const std::string &request_line)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string req = request_line + "\r\n\r\n";
    EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

} // namespace

// --- counter blocks --------------------------------------------------

TEST(Counters, AddIsANoOpWithoutAWorkerScope)
{
    telemetry::resetCounters();
    telemetry::add(Counter::TrialsWon, 5);
    EXPECT_EQ(telemetry::totals().get(Counter::TrialsWon), 0u);
}

TEST(Counters, AddAccumulatesInsideAScopeAndSurvivesIt)
{
    telemetry::resetCounters();
    {
        telemetry::WorkerScope scope;
        telemetry::add(Counter::TrialsCompleted);
        telemetry::add(Counter::CellsProcessed, 1024);
    }
    // Retired workers keep their counts: totals stay monotonic.
    const telemetry::CounterTotals t = telemetry::totals();
    EXPECT_EQ(t.get(Counter::TrialsCompleted), 1u);
    EXPECT_EQ(t.get(Counter::CellsProcessed), 1024u);

    // A fresh scope (reusing the pooled block) keeps adding on top.
    {
        telemetry::WorkerScope scope;
        telemetry::add(Counter::TrialsCompleted);
    }
    EXPECT_EQ(telemetry::totals().get(Counter::TrialsCompleted), 2u);

    telemetry::resetCounters();
    EXPECT_EQ(telemetry::totals().get(Counter::TrialsCompleted), 0u);
    EXPECT_EQ(telemetry::totals().get(Counter::CellsProcessed), 0u);
}

TEST(Counters, ScopesNestAndRestoreThePreviousBlock)
{
    telemetry::resetCounters();
    telemetry::WorkerScope outer;
    telemetry::add(Counter::TrialsStarted);
    {
        telemetry::WorkerScope inner;
        telemetry::add(Counter::TrialsStarted);
    }
    telemetry::add(Counter::TrialsStarted); // back on the outer block
    EXPECT_EQ(telemetry::totals().get(Counter::TrialsStarted), 3u);
    telemetry::resetCounters();
}

TEST(Counters, MultithreadedAddsSumExactly)
{
    telemetry::resetCounters();
    constexpr unsigned kThreads = 4;
    constexpr uint64_t kAdds = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            telemetry::WorkerScope scope;
            for (uint64_t i = 0; i < kAdds; ++i)
                telemetry::add(Counter::CellsProcessed, 2);
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(telemetry::totals().get(Counter::CellsProcessed),
              kThreads * kAdds * 2);
    telemetry::resetCounters();
}

TEST(Counters, HashStatsDrainIntoTheBlock)
{
    telemetry::resetCounters();
    telemetry::tl_hash_stats = {};
    telemetry::WorkerScope scope;
    telemetry::noteHashBatch(8);
    telemetry::noteHashBatch(16);
    // Not visible until the owning kernel drains them.
    EXPECT_EQ(telemetry::totals().get(Counter::HashBatches), 0u);
    telemetry::drainHashStats();
    EXPECT_EQ(telemetry::totals().get(Counter::HashBatches), 2u);
    EXPECT_EQ(telemetry::totals().get(Counter::HashLanes), 24u);
    // Drain is move semantics: a second drain adds nothing.
    telemetry::drainHashStats();
    EXPECT_EQ(telemetry::totals().get(Counter::HashBatches), 2u);
    telemetry::resetCounters();
}

TEST(Counters, EveryCounterHasAStableSnakeCaseName)
{
    for (unsigned i = 0; i < telemetry::kCounterCount; ++i) {
        const char *name =
            telemetry::counterName(static_cast<Counter>(i));
        ASSERT_NE(name, nullptr);
        for (const char *c = name; *c; ++c)
            EXPECT_TRUE((*c >= 'a' && *c <= 'z') || *c == '_' ||
                        (*c >= '0' && *c <= '9'))
                << "counter " << i << " name '" << name << "'";
    }
    EXPECT_STREQ(telemetry::counterName(Counter::TrialsWon),
                 "trials_won");
    EXPECT_STREQ(telemetry::counterName(Counter::KernelAvx512),
                 "kernel_invocations_avx512");
}

// --- campaign monitor ------------------------------------------------

namespace
{

telemetry::MonitorConfig
gridConfig()
{
    telemetry::MonitorConfig cfg;
    cfg.interval_s = 0.01;
    cfg.total_trials = 24;
    cfg.campaign_seed = 77;
    cfg.grid_spec = "board=x seeds=4";
    cfg.axes = {{"attack", 2}, {"off_ms", 3}, {"seeds", 4}};
    return cfg;
}

} // namespace

TEST(Monitor, HeartbeatLineRoundTripsThroughTheReportReader)
{
    telemetry::resetCounters();
    {
        telemetry::WorkerScope scope;
        telemetry::add(Counter::TrialsStarted, 13);
        telemetry::add(Counter::TrialsCompleted, 13);
        telemetry::add(Counter::TrialsWon, 11);
        telemetry::add(Counter::TrialsFailed, 2);
        telemetry::add(Counter::CellsProcessed, 4096);
    }
    telemetry::CampaignMonitor monitor(gridConfig());
    telemetry::TelemetrySnapshot snap = monitor.latest();
    snap.seq = 3;
    snap.final_sample = true;
    snap.trials_per_sec = 6.5;
    const std::string line = monitor.heartbeatLine(snap);

    // The line is one strict-JSON object the report layer reads back.
    const report::JsonValue v = report::parseJson(line, "hb", 1);
    EXPECT_EQ(v.find("schema")->text, "voltboot-heartbeat-v1");

    const std::string dir = tempDir("hb_roundtrip");
    std::ofstream(dir + "/hb.jsonl") << line << "\n";
    const std::vector<report::Heartbeat> beats =
        report::readHeartbeats(dir + "/hb.jsonl");
    ASSERT_EQ(beats.size(), 1u);
    EXPECT_EQ(beats[0].seq, 3u);
    EXPECT_TRUE(beats[0].final_sample);
    EXPECT_EQ(beats[0].campaign_seed, 77u);
    EXPECT_EQ(beats[0].total_trials, 24u);
    EXPECT_EQ(beats[0].started, 13u);
    EXPECT_EQ(beats[0].won, 11u);
    EXPECT_EQ(beats[0].failed, 2u);
    EXPECT_EQ(beats[0].counters.at("cells_processed"), 4096u);
    EXPECT_DOUBLE_EQ(beats[0].trials_per_sec, 6.5);
    std::filesystem::remove_all(dir);
    telemetry::resetCounters();
}

TEST(Monitor, ProgressJsonDecodesPerAxisPositions)
{
    telemetry::resetCounters();
    {
        telemetry::WorkerScope scope;
        telemetry::add(Counter::TrialsCompleted, 13);
    }
    telemetry::CampaignMonitor monitor(gridConfig());
    const report::JsonValue v =
        report::parseJson(monitor.progressJson(), "progress", 1);
    EXPECT_EQ(v.find("total")->number, 24.0);
    EXPECT_EQ(v.find("done")->number, 13.0);
    const report::JsonValue *axes = v.find("axes");
    ASSERT_NE(axes, nullptr);
    ASSERT_EQ(axes->items.size(), 3u);
    // 13 trials into a 2x3x4 grid, slowest-first: attack 13/12 = 1,
    // off_ms (13%12)/4 = 0, seeds 13%4 = 1.
    EXPECT_EQ(axes->items[0].find("name")->text, "attack");
    EXPECT_EQ(axes->items[0].find("position")->number, 1.0);
    EXPECT_EQ(axes->items[1].find("position")->number, 0.0);
    EXPECT_EQ(axes->items[2].find("position")->number, 1.0);
    telemetry::resetCounters();
}

TEST(Monitor, MetricsSnapshotRendersAsPrometheus)
{
    telemetry::resetCounters();
    {
        telemetry::WorkerScope scope;
        telemetry::add(Counter::TrialsCompleted, 7);
    }
    telemetry::CampaignMonitor monitor(gridConfig());
    const std::string text =
        report::toPrometheus(monitor.metricsSnapshot());
    EXPECT_NE(text.find("voltboot_telemetry_trials_completed 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE voltboot_telemetry_trials_total gauge"),
              std::string::npos);
    telemetry::resetCounters();
}

TEST(Monitor, SamplerAppendsHeartbeatsAndAFinalSample)
{
    telemetry::resetCounters();
    const std::string dir = tempDir("hb_sampler");
    telemetry::MonitorConfig cfg = gridConfig();
    cfg.heartbeat_path = dir + "/hb.jsonl";
    {
        telemetry::CampaignMonitor monitor(cfg);
        monitor.start();
        telemetry::WorkerScope scope;
        telemetry::add(Counter::TrialsCompleted, 24);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        monitor.stop();
    }
    const std::vector<report::Heartbeat> beats =
        report::readHeartbeats(dir + "/hb.jsonl");
    ASSERT_GE(beats.size(), 2u); // at least one timer + the final
    for (size_t i = 0; i < beats.size(); ++i)
        EXPECT_EQ(beats[i].seq, i + 1);
    EXPECT_TRUE(beats.back().final_sample);
    EXPECT_EQ(beats.back().completed, 24u);
    for (size_t i = 0; i + 1 < beats.size(); ++i)
        EXPECT_FALSE(beats[i].final_sample);
    std::filesystem::remove_all(dir);
    telemetry::resetCounters();
}

// --- embedded HTTP server --------------------------------------------

TEST(HttpServer, ServesRoutesOnAnEphemeralPort)
{
    telemetry::HttpServer server(
        0, [](const std::string &path) -> telemetry::HttpResponse {
            if (path == "/healthz")
                return {200, "text/plain; charset=utf-8", "ok\n"};
            if (path == "/echo")
                return {200, "application/json", "{\"here\": true}"};
            return {404, "text/plain; charset=utf-8", "not found\n"};
        });
    ASSERT_GT(server.port(), 0);

    const std::string ok =
        httpGet(server.port(), "GET /healthz HTTP/1.0");
    EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(ok.find("Content-Length: 3"), std::string::npos);
    EXPECT_NE(ok.find("\r\n\r\nok\n"), std::string::npos);

    // Query strings are stripped before dispatch.
    const std::string query =
        httpGet(server.port(), "GET /echo?verbose=1 HTTP/1.0");
    EXPECT_NE(query.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(query.find("application/json"), std::string::npos);
    EXPECT_NE(query.find("{\"here\": true}"), std::string::npos);

    const std::string missing =
        httpGet(server.port(), "GET /nope HTTP/1.0");
    EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

    const std::string post =
        httpGet(server.port(), "POST /healthz HTTP/1.0");
    EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos);

    server.stop();
    server.stop(); // idempotent
}

TEST(HttpServer, MalformedRequestGetsA400)
{
    telemetry::HttpServer server(
        0, [](const std::string &) -> telemetry::HttpResponse {
            return {200, "text/plain; charset=utf-8", "ok\n"};
        });
    const std::string bad = httpGet(server.port(), "NONSENSE");
    EXPECT_NE(bad.find("HTTP/1.0 400"), std::string::npos);
}

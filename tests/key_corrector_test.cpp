/**
 * @file
 * Tests for the error-correcting AES key reconstruction, including the
 * end-to-end DRAM cold boot scenario it enables (the classic attack the
 * paper's on-chip schemes were built to stop).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes.hh"
#include "crypto/key_corrector.hh"
#include "crypto/key_finder.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

namespace voltboot
{
namespace
{

std::vector<uint8_t>
testKey(size_t bytes, uint64_t seed = 42)
{
    Rng rng(seed);
    std::vector<uint8_t> key(bytes);
    for (auto &b : key)
        b = static_cast<uint8_t>(rng.next());
    return key;
}

std::vector<uint8_t>
corrupt(std::vector<uint8_t> data, double ber, uint64_t seed)
{
    Rng rng(seed);
    for (auto &b : data)
        for (int bit = 0; bit < 8; ++bit)
            if (rng.uniform() < ber)
                b ^= 1u << bit;
    return data;
}

TEST(KeyCorrector, CleanScheduleNeedsNoWork)
{
    const auto key = testKey(16);
    const auto sched = Aes::expandKey(key);
    KeyCorrector corrector;
    const auto r = corrector.correct(sched, 16);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key, key);
    EXPECT_EQ(r->key_bits_flipped, 0u);
    EXPECT_EQ(r->residual_bit_errors, 0u);
}

TEST(KeyCorrector, RepairsErrorsInDerivedBytes)
{
    const auto key = testKey(16, 7);
    auto sched = Aes::expandKey(key);
    // Corrupt only derived bytes: the observed key bytes are intact, so
    // correction reduces to verification.
    for (size_t i = 20; i < sched.size(); i += 13)
        sched[i] ^= 0x10;
    KeyCorrector corrector;
    const auto r = corrector.correct(sched, 16);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key, key);
}

TEST(KeyCorrector, RepairsErrorsInTheKeyBytesThemselves)
{
    const auto key = testKey(16, 9);
    auto sched = Aes::expandKey(key);
    // Flip three bits inside the master-key bytes.
    sched[1] ^= 0x04;
    sched[7] ^= 0x80;
    sched[15] ^= 0x01;
    KeyCorrector corrector;
    const auto r = corrector.correct(sched, 16);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key, key);
    EXPECT_EQ(r->key_bits_flipped, 3u);
    // The residual is the window's own three corrupted key-byte bits:
    // the reconstructed (true) key disagrees with them by construction.
    EXPECT_EQ(r->residual_bit_errors, 3u);
}

class CorrectorBerSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CorrectorBerSweep, RecoversAtLowBer)
{
    const double ber = GetParam();
    const auto key = testKey(16, 11);
    int recovered = 0;
    const int trials = 8;
    KeyCorrector corrector;
    for (int t = 0; t < trials; ++t) {
        const auto noisy =
            corrupt(Aes::expandKey(key), ber, 100 + t);
        const auto r = corrector.correct(noisy, 16);
        recovered += r && r->key == key;
    }
    // <=1% BER: the greedy search should almost always converge.
    EXPECT_GE(recovered, trials - 1) << "at BER " << ber;
}

INSTANTIATE_TEST_SUITE_P(LowBer, CorrectorBerSweep,
                         ::testing::Values(0.001, 0.005, 0.01));

TEST(KeyCorrector, GivesUpOnGarbage)
{
    Rng rng(5);
    std::vector<uint8_t> junk(176);
    for (auto &b : junk)
        b = static_cast<uint8_t>(rng.next());
    KeyCorrector corrector;
    EXPECT_FALSE(corrector.correct(junk, 16).has_value());
}

TEST(KeyCorrector, GarbageBailsDeterministicallyBeforeSearching)
{
    // Random data sits at ~50% residual fraction — the bistable-SRAM
    // cold-boot regime. The noise gate must recognise it in one pass
    // and report a structured reason instead of burning the iteration
    // budget on schedule expansions.
    Rng rng(5);
    std::vector<uint8_t> junk(176);
    for (auto &b : junk)
        b = static_cast<uint8_t>(rng.next());
    EXPECT_GT(KeyCorrector::linearResidualFraction(junk, 16), 0.40);

    KeyCorrector corrector;
    const auto attempt = corrector.attempt(junk, 16);
    EXPECT_FALSE(attempt.key.has_value());
    EXPECT_EQ(attempt.gave_up, GiveUpReason::ErrorFloor);
    EXPECT_EQ(attempt.iterations, 0u);
    // One distance eval to report the residual; no local search.
    EXPECT_LE(attempt.distance_evals, 1u);
    EXPECT_STREQ(toString(attempt.gave_up), "error_floor");
}

TEST(KeyCorrector, ResidualFractionTracksChannelNoise)
{
    const auto key = testKey(16, 17);
    const auto clean = Aes::expandKey(key);
    EXPECT_EQ(KeyCorrector::linearResidualFraction(clean, 16), 0.0);
    // A true schedule at BER p violates ~3p of its relation bits.
    const auto noisy = corrupt(clean, 0.02, 4242);
    const double frac = KeyCorrector::linearResidualFraction(noisy, 16);
    EXPECT_GT(frac, 0.01);
    EXPECT_LT(frac, 0.15);
}

TEST(KeyCorrector, AttemptReportsSuccessWithNoReason)
{
    const auto key = testKey(16, 19);
    auto sched = Aes::expandKey(key);
    sched[2] ^= 0x08;
    KeyCorrector corrector;
    const auto attempt = corrector.attempt(sched, 16);
    ASSERT_TRUE(attempt.key.has_value());
    EXPECT_EQ(attempt.key->key, key);
    EXPECT_EQ(attempt.gave_up, GiveUpReason::None);
    EXPECT_GT(attempt.distance_evals, 0u);
}

TEST(KeyCorrector, ResidualWordRelationsHoldOnIdealSchedules)
{
    // Every relation word set must be XOR-exact on a clean schedule,
    // for all three key sizes.
    for (size_t kb : {16u, 24u, 32u}) {
        const auto sched = Aes::expandKey(testKey(kb, 23));
        const unsigned nk = static_cast<unsigned>(kb / 4);
        for (unsigned i : scheduleResidualWords(kb)) {
            uint32_t w[3];
            std::memcpy(&w[0], sched.data() + 4 * i, 4);
            std::memcpy(&w[1], sched.data() + 4 * (i - 1), 4);
            std::memcpy(&w[2], sched.data() + 4 * (i - nk), 4);
            EXPECT_EQ(w[0] ^ w[1] ^ w[2], 0u)
                << "key bytes " << kb << " word " << i;
        }
    }
}

TEST(KeyCorrector, RejectsBadPriorSizes)
{
    const auto sched = Aes::expandKey(testKey(16, 29));
    KeyCorrector corrector;
    const std::vector<float> wrong(64, 0.1f);
    EXPECT_THROW(corrector.attempt(sched, 16, wrong), FatalError);
}

TEST(KeyCorrector, Handles256BitKeys)
{
    const auto key = testKey(32, 13);
    auto sched = Aes::expandKey(key);
    sched[3] ^= 0x40; // one key-byte error
    sched[60] ^= 0x02;
    KeyCorrector corrector;
    const auto r = corrector.correct(sched, 32);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key, key);
}

TEST(KeyCorrector, RejectsBadSizes)
{
    std::vector<uint8_t> window(240, 0);
    KeyCorrector corrector;
    EXPECT_THROW(corrector.correct(window, 20), FatalError);
    std::vector<uint8_t> tiny(100, 0);
    EXPECT_THROW(corrector.correct(tiny, 16), FatalError);
}

// --- the classic DRAM cold boot, end to end on our substrate ---

/** Run the Halderman scenario at @p celsius; return true if the key was
 * recovered from the post-transplant DRAM image. */
bool
dramColdBoot(double celsius, Seconds off_time)
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // Victim: a disk-encryption key schedule sits in DRAM (the normal,
    // pre-TRESOR world).
    const auto key = testKey(16, 21);
    const auto sched = Aes::expandKey(key);
    soc.dramArray().write(0x40000, sched);

    // Chill, cut power for the transplant window, repower (the attacker
    // machine), dump the DRAM.
    soc.setAmbient(Temperature::celsius(celsius));
    soc.powerCycle(off_time);
    std::vector<uint8_t> window(176 + 64);
    soc.dramArray().read(0x40000, window);

    // Scan with correction: decayed master-key bytes defeat the plain
    // scanner, so the robust path pre-filters on first-round consistency
    // and repairs candidates.
    RobustKeyScanner scanner{KeyCorrector{}};
    const auto hit = scanner.best(MemoryImage(window), 16);
    return hit && hit->corrected.key == key;
}

TEST(DramColdBoot, SucceedsWhenChilled)
{
    // -50 degC, 10 s transplant: the classic attack works on DRAM.
    EXPECT_TRUE(dramColdBoot(-50.0, Seconds(10.0)));
}

TEST(DramColdBoot, SucceedsAtRoomTempForFastSwaps)
{
    // Room temperature with a sub-second swap also works — DRAM's
    // retention is just that long.
    EXPECT_TRUE(dramColdBoot(25.0, Seconds::milliseconds(200)));
}

TEST(DramColdBoot, FailsWhenWarmAndSlow)
{
    // A slow warm swap decays too much for even the corrector.
    EXPECT_FALSE(dramColdBoot(25.0, Seconds(30.0)));
}

} // namespace
} // namespace voltboot

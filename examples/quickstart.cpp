/**
 * @file
 * Quickstart: the complete Volt Boot attack in ~60 lines.
 *
 * Builds a Raspberry-Pi-4-class device, runs a bare-metal victim that
 * parks a recognisable pattern in the L1 d-cache, executes the four
 * attack steps, and shows the pattern surviving the power cycle into the
 * attacker's dump.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    // 1. The victim device: a Raspberry Pi 4 (BCM2711, 4x Cortex-A72).
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // 2. Victim software: stores secret-looking data; with a write-back
    //    cache the data lives in SRAM only, never reaching DRAM.
    BareMetalRunner runner(soc);
    const uint64_t secret_addr = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(secret_addr, 4096, 0xA5));
    std::cout << "victim: wrote 4 KB of 0xA5 'secrets' into core 0's "
                 "L1 d-cache\n";
    std::cout << "DRAM copy exists: "
              << (soc.dramArray().readByte(0x40000) == 0xA5 ? "yes"
                                                            : "no (write-"
                                                              "back)")
              << "\n\n";

    // 3. The attack: attach a bench supply to test pad TP15 (VDD_CORE),
    //    pull the plug, reboot from USB, dump the cache via RAMINDEX.
    VoltBootAttack attack(soc);
    const AttackOutcome outcome = attack.execute();
    for (const auto &line : attack.trace())
        std::cout << line << "\n";
    if (!outcome.rebooted_into_attacker_code) {
        std::cout << "attack failed: " << outcome.failure_reason << "\n";
        return 1;
    }

    // 4. Extraction and analysis.
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    size_t hits = 0;
    for (uint8_t b : dump.bytes())
        hits += b == 0xA5;
    std::cout << "\nattacker's dump: " << dump.sizeBytes()
              << " bytes of L1D data RAM\n";
    std::cout << "secret bytes recovered: " << hits << " / 4096 ("
              << (hits >= 4096 ? "100%" : "partial") << ")\n";
    const std::vector<uint8_t> line_of_secret(64, 0xA5);
    const auto where = dump.findAll(line_of_secret);
    if (!where.empty()) {
        std::cout << "\nfirst cache line of the recovered secret (dump "
                     "offset "
                  << where.front() << "):\n"
                  << dump.slice(where.front(), 64).hexdump(64);
    }
    return hits >= 4096 ? 0 : 1;
}

/**
 * @file
 * Defeating CaSE-style locked-cache execution.
 *
 * Cache-assisted Secure Execution keeps a *plaintext* crypto binary and
 * its round keys in locked L1 lines: DRAM holds only ciphertext, the
 * kernel cannot evict the lines, and cold boot finds nothing off-chip.
 * Volt Boot holds the core power domain through a power cycle and reads
 * the locked lines out through the RAMINDEX debug interface — plaintext
 * binary, round keys and all.
 */

#include <cstdio>
#include <iostream>

#include "core/attack.hh"
#include "crypto/key_finder.hh"
#include "crypto/onchip_crypto.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // --- victim: stage the CaSE environment ---
    Cache &l1d = soc.memory().l1d(0);
    l1d.invalidateAll();
    l1d.setEnabled(true);

    const std::vector<uint8_t> key = {0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca,
                                      0x71, 0xbe, 0x2b, 0x73, 0xae, 0xf0,
                                      0x85, 0x7d, 0x77, 0x81};
    // A recognisable "decrypted binary": a marker string + filler.
    std::vector<uint8_t> plaintext_binary;
    const std::string marker = "CASE-PLAINTEXT-CRYPTO-BINARY";
    for (int rep = 0; rep < 8; ++rep)
        plaintext_binary.insert(plaintext_binary.end(), marker.begin(),
                                marker.end());
    plaintext_binary.resize(512, 0xC3);

    const uint64_t enclave = soc.config().dram_base + 0x40000;
    CaseExecution cas(l1d, enclave, plaintext_binary, key);
    std::cout << "victim: " << plaintext_binary.size()
              << "-byte plaintext binary + AES schedule locked into L1 "
                 "lines at 0x"
              << std::hex << enclave << std::dec << "\n";

    std::array<uint8_t, 16> block{};
    cas.encryptBlock(block);
    std::cout << "victim: crypto runs from the locked cache\n";

    // DRAM view: neither the marker nor the schedule is off-chip.
    std::vector<uint8_t> dram(soc.dramArray().sizeBytes());
    soc.dramArray().read(0, dram);
    const MemoryImage dram_img(std::move(dram));
    const std::vector<uint8_t> marker_bytes(marker.begin(), marker.end());
    std::cout << "marker in DRAM: "
              << (dram_img.contains(marker_bytes) ? "YES" : "no")
              << " -> off-chip attacks find only ciphertext\n\n";

    // --- attacker ---
    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code)
        return 1;
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);

    const auto hits = dump.findAll(marker_bytes);
    std::cout << "attacker: L1D dump contains the plaintext binary at "
              << hits.size() << " offsets\n";

    KeyFinder finder;
    const auto cand = finder.best(dump);
    if (cand) {
        std::cout << "attacker: AES schedule found; key = ";
        for (uint8_t b : cand->key)
            std::printf("%02x", b);
        std::cout << (cand->key == key ? " (victim's key)" : " (??)")
                  << "\n";
    }
    std::cout << "\nCaSE's guarantee holds off-chip but the locked lines"
                 " sit in VDD_CORE — Volt Boot\nreads the whole enclave "
                 "across the power cycle with 100% accuracy.\n";
    return (cand && cand->key == key && !hits.empty()) ? 0 : 1;
}

/**
 * @file
 * Post-extraction forensics: mapping a cache dump back onto the victim's
 * address space.
 *
 * A raw data-RAM dump is a bag of bytes; the *tag* RAM — equally
 * RAMINDEX-visible and equally retained by Volt Boot — tells the
 * attacker which physical address every line held, and whether it was
 * dirty (modified data that never reached DRAM), locked (a CaSE enclave)
 * or secure. This example reconstructs the (address -> content) view of
 * the victim's working set from the two dumps.
 */

#include <algorithm>
#include <iostream>

#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    Soc soc(SocConfig::bcm2711());
    soc.powerOn();

    // Victim: writes a "session token" into one specific heap address
    // among other traffic. Write-back means DRAM never sees it.
    BareMetalRunner runner(soc);
    const uint64_t token_addr = soc.config().dram_base + 0x41540;
    const uint64_t heap = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(heap, 4096, 0x11));
    // Place the token with a tiny dedicated program so its address is
    // architecturally meaningful.
    Program p = Assembler::assemble(
        "    movz x0, #0x1004\n"
        "    msr sctlr_el1, x0\n" +
        workloads::loadImm64("x1", token_addr) +
        workloads::loadImm64("x2", 0x5EC2E77064AA1337ull) +
        "    str x2, [x1]\n"
        "    hlt\n");
    p.load_address = soc.config().dram_base + 0x3000;
    soc.loadProgram(p);
    soc.runCore(0, p.load_address, 1000);
    std::cout << "victim: session token stored at 0x" << std::hex
              << token_addr << std::dec << " (d-cache only)\n\n";

    // Attack: dump BOTH the data RAM and the tag RAM of the d-cache.
    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code)
        return 1;
    const MemoryImage data = attack.dumpL1(0, L1Ram::DData);
    const MemoryImage tags = attack.dumpL1(0, L1Ram::DTag);

    // Forensics: reconstruct the victim's cached address space.
    const auto lines = reconstructTagRam(tags, soc.config().l1d);
    std::cout << "tag-RAM reconstruction: " << lines.size()
              << " valid lines\n";

    size_t dirty = 0;
    for (const auto &l : lines)
        dirty += l.dirty;
    std::cout << "dirty (never reached DRAM): " << dirty << "\n\n";

    // Find the token by ADDRESS, not by content scanning.
    const auto it = std::find_if(
        lines.begin(), lines.end(), [&](const CachedLineInfo &l) {
            return l.phys_addr == (token_addr & ~63ull);
        });
    if (it == lines.end()) {
        std::cout << "token line not found in tag RAM\n";
        return 1;
    }
    std::cout << "token line located: way " << it->way << ", set "
              << it->set << ", addr 0x" << std::hex << it->phys_addr
              << std::dec << (it->dirty ? " (dirty)" : "") << "\n";

    const MemoryImage line = lineContent(*it, data, soc.config().l1d);
    uint64_t token = 0;
    const size_t in_line = token_addr & 63ull;
    for (int b = 0; b < 8; ++b)
        token |= static_cast<uint64_t>(line.byteAt(in_line + b))
                 << (8 * b);
    std::cout << "recovered token: 0x" << std::hex << token << std::dec
              << "\n";
    const bool ok = token == 0x5EC2E77064AA1337ull;
    std::cout << (ok ? "matches the victim's token.\n"
                     : "MISMATCH!\n");
    std::cout << "\nthe tag RAM turns a bag of bytes into an address-"
                 "indexed snapshot of the victim's\nworking set — no "
                 "pattern scanning required.\n";
    return ok ? 0 : 1;
}

/**
 * @file
 * Evaluating YOUR design against Volt Boot.
 *
 * The library's platform database covers the paper's three boards, but
 * the point of a simulator is asking "what about my chip?". This example
 * builds a fictional SoC from scratch — different cache geometry,
 * different power tree, a deliberately risky choice (the iRAM shares the
 * always-interesting core rail) — runs the attack against it, then
 * applies the cheapest effective countermeasure and shows the attack
 * dying.
 */

#include <iostream>

#include "voltboot.hh"

using namespace voltboot;

namespace
{

SocConfig
myChip()
{
    SocConfig c;
    c.board_name = "Acme DevKit";
    c.soc_name = "ACME9000";
    c.cpu_name = "2x vb64";
    c.pmic_name = "ACME-PMIC";
    c.core_count = 2;

    // Bigger L1D, smaller L1I than the Pi parts; no shared L2.
    c.l1i = CacheGeometry{16 * 1024, 2, 64};
    c.l1d = CacheGeometry{64 * 1024, 4, 64};
    c.l2.reset();

    c.dram_bytes = 2 << 20;

    // 64 KB of iRAM... wired into the CORE domain (the risky choice).
    c.iram_base = 0x20000000;
    c.iram_bytes = 64 * 1024;
    c.iram_on_mem_domain = false;

    c.core_domain = DomainSpec{"VDD_LOGIC", Volt(0.9), true, Amp(0.4),
                               Amp::milliamps(6),
                               Farad::microfarads(150)};
    c.mem_domain = DomainSpec{"VDD_MEM", Volt(1.2), true, Amp(0.5),
                              Amp::milliamps(10),
                              Farad::microfarads(100)};
    c.io_domain = DomainSpec{"VDD_IO", Volt(2.8), false, Amp(0.1),
                             Amp::milliamps(4), Farad::microfarads(22)};

    c.pads = {{"TP1", "VDD_LOGIC"}, {"TP2", "VDD_MEM"},
              {"TP3", "VDD_IO"}};
    c.attack_pad = "TP1";
    c.attack_target = "L1D, L1I, registers, iRAM";
    c.jtag_enabled = true; // devkits ship with JTAG open
    c.chip_seed = 0xAC3E;
    return c;
}

double
attackMyChip(const SocConfig &cfg)
{
    Soc soc(cfg);
    soc.powerOn();

    // Firmware parks a session secret in the core-rail iRAM (written by
    // the running software itself; no debug access needed).
    std::vector<uint8_t> secret(4096);
    for (size_t i = 0; i < secret.size(); ++i)
        secret[i] = static_cast<uint8_t>(i * 31 + 7);
    for (size_t i = 0; i < secret.size(); i += 8) {
        uint64_t word = 0;
        for (int b = 0; b < 8; ++b)
            word |= static_cast<uint64_t>(secret[i + b]) << (8 * b);
        soc.port(0).write64(cfg.iram_base + i, word);
    }

    VoltBootAttack attack(soc);
    if (!attack.execute().rebooted_into_attacker_code)
        return 0.0;
    // Extraction: JTAG when the devkit left it open, else the attacker
    // would need to run code — which authenticated boot may forbid.
    if (!soc.jtag().available())
        return 0.0;
    const MemoryImage dump =
        soc.jtag().readIram(cfg.iram_base, secret.size());
    const RetentionReport rep =
        compareImages(dump, MemoryImage(secret));
    return rep.accuracy();
}

} // namespace

int
main()
{
    const SocConfig risky = myChip();
    std::cout << "design under review: " << risky.soc_name
              << " — iRAM on the core rail, JTAG open, pads "
                 "everywhere\n\n";

    const double acc = attackMyChip(risky);
    std::cout << "Volt Boot vs the draft design: secret recovered at "
              << TextTable::pct(acc) << "\n";

    // Design review: try the Section 8 fixes in increasing cost order.
    std::cout << "\ndesign-review sweep:\n";
    TextTable table({"Revision", "Secret recovered", "Verdict"});
    {
        SocConfig fixed = risky;
        fixed.boot_sram_reset = true;
        table.addRow({"+ boot-time SRAM reset (new silicon)",
                      TextTable::pct(attackMyChip(fixed)),
                      attackMyChip(fixed) > 0.99 ? "still broken"
                                                 : "fixed"});
    }
    {
        SocConfig fixed = risky;
        fixed.authenticated_boot = true;
        // Auth boot alone does not cover the open JTAG: the probe holds
        // the iRAM and JTAG reads it without booting anything.
        table.addRow({"+ authenticated boot (fuses)",
                      TextTable::pct(attackMyChip(fixed)),
                      attackMyChip(fixed) > 0.99
                          ? "still broken (JTAG is open!)"
                          : "fixed"});
    }
    {
        SocConfig fixed = risky;
        fixed.authenticated_boot = true;
        fixed.jtag_enabled = false; // fuse out debug access too
        table.addRow({"+ authenticated boot AND fused-off JTAG",
                      TextTable::pct(attackMyChip(fixed)),
                      attackMyChip(fixed) > 0.99 ? "still broken"
                                                 : "fixed"});
    }
    std::cout << table.render();

    std::cout << "\nlesson: countermeasures compose around the WHOLE "
                 "extraction surface — signing the\nboot chain while "
                 "leaving JTAG open fixes nothing, exactly the class of "
                 "mistake the\npaper's threat model punishes.\n";
    return 0;
}

/**
 * @file
 * Evaluating the Section 8 countermeasures, one device at a time.
 *
 * Spins up a fresh BCM2711-class device per defence, runs the victim +
 * attack pipeline, and narrates why each defence does or does not stop
 * Volt Boot.
 */

#include <iostream>

#include "core/analysis.hh"
#include "core/countermeasures.hh"
#include "soc/soc_config.hh"

using namespace voltboot;

int
main()
{
    std::cout << "Volt Boot needs two things (Section 8): (1) induce "
                 "SRAM retention across the\npower cycle, and (2) read "
                 "the unmodified SRAM after reboot. Each defence breaks\n"
                 "one of them — or neither.\n\n";

    struct Entry
    {
        Countermeasure c;
        const char *why;
    };
    const Entry entries[] = {
        {Countermeasure::None, "nothing in the way"},
        {Countermeasure::PurgeOnShutdown,
         "breaks nothing: an abrupt disconnect halts software before "
         "any purge hook runs"},
        {Countermeasure::BootSramReset,
         "breaks (2): MBIST-style hardware zeroises every SRAM at "
         "reset, before any software"},
        {Countermeasure::TrustZone,
         "breaks (2) for secure data: NS-bit checks block debug reads; "
         "flipping the attribute erases the line"},
        {Countermeasure::AuthenticatedBoot,
         "breaks (2): unsigned attacker media never boots, so nothing "
         "reads the retained SRAM"},
        {Countermeasure::EliminateDomainSeparation,
         "breaks (1): no separately holdable SRAM rail exists, but "
         "costs power/performance and is impractical"},
    };

    TextTable table({"Defence", "Attack", "Recovered", "Why"});
    for (const Entry &e : entries) {
        const CountermeasureResult r =
            evaluateCountermeasure(SocConfig::bcm2711(), e.c);
        table.addRow({toString(e.c),
                      r.attack_succeeded ? "SUCCEEDS" : "defeated",
                      TextTable::pct(r.recovered_fraction), e.why});
    }
    std::cout << table.render();

    std::cout << "\nthe paper's conclusion: only boot-time SRAM reset, "
                 "enforced TrustZone attributes, or\nmandated "
                 "authenticated boot are practical defences; software "
                 "purges are bypassed by\npulling the plug.\n";
    return 0;
}

/**
 * @file
 * Cold boot vs Volt Boot, side by side — the paper's core claim in one
 * program.
 *
 * The same victim (pattern in the L1 d-cache of a Pi 4) is attacked two
 * ways at several temperatures:
 *
 *   - classic cold boot (no probe): retention depends entirely on
 *     temperature and the cells' intrinsic decay; on embedded SRAM it
 *     fails everywhere an attacker can realistically operate;
 *   - Volt Boot (probe on VDD_CORE): retention is voltage-induced and
 *     temperature-independent — 100% at room temperature.
 */

#include <iostream>

#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

double
victimAccuracy(const MemoryImage &dump)
{
    const MemoryImage truth = MemoryImage::filled(dump.sizeBytes(), 0xAA);
    return 1.0 - MemoryImage::fractionalHamming(dump, truth);
}

void
prepareVictim(Soc &soc)
{
    BareMetalRunner runner(soc);
    const uint64_t base = soc.config().dram_base + 0x40000;
    runner.runOn(0, workloads::patternStore(
                        base, soc.config().l1d.size_bytes, 0xAA));
}

} // namespace

int
main()
{
    std::cout << "victim: full L1 d-cache of 0xAA on a BCM2711; "
                 "attacker wants it back after a\npower cycle "
                 "(500 ms unless noted). accuracy = 1 - fractional "
                 "Hamming distance.\n\n";

    TextTable table({"Ambient", "Off-time", "Cold boot accuracy",
                     "Volt Boot accuracy"});

    struct Point
    {
        double celsius;
        double off_ms;
    };
    for (const Point p : {Point{25, 500}, Point{0, 500}, Point{-40, 500},
                          Point{-110, 20}, Point{-140, 20}}) {
        // Cold boot run.
        Soc cold(SocConfig::bcm2711());
        cold.powerOn();
        prepareVictim(cold);
        ColdBootAttack cb(cold, Temperature::celsius(p.celsius),
                          Seconds::milliseconds(p.off_ms));
        double cold_acc = 0.0;
        if (cb.powerCycleAndBoot())
            cold_acc = victimAccuracy(cb.dumpL1(0, L1Ram::DData));

        // Volt Boot run at the same temperature and off-time.
        Soc volt(SocConfig::bcm2711());
        volt.setAmbient(Temperature::celsius(p.celsius));
        volt.powerOn();
        prepareVictim(volt);
        AttackConfig cfg;
        cfg.off_time = Seconds::milliseconds(p.off_ms);
        VoltBootAttack vb(volt, cfg);
        double volt_acc = 0.0;
        if (vb.execute().rebooted_into_attacker_code)
            volt_acc = victimAccuracy(vb.dumpL1(0, L1Ram::DData));

        table.addRow({TextTable::num(p.celsius, 0) + " degC",
                      TextTable::num(p.off_ms, 0) + " ms",
                      TextTable::pct(cold_acc),
                      TextTable::pct(volt_acc)});
    }
    std::cout << table.render();

    std::cout
        << "\nnote: 50% accuracy == zero information (the dump is the "
           "random power-up state;\nhalf its bits agree with any "
           "pattern by chance). Cold boot only beats chance below\n"
           "-110 degC with millisecond off-times no battery-pull can "
           "achieve; Volt Boot is\nexact everywhere, indefinitely.\n";
    return 0;
}

/**
 * @file
 * Stealing a TRESOR-style register-resident AES key.
 *
 * TRESOR/PRIME-class systems keep the AES key schedule exclusively in
 * CPU registers so that no cold boot attack on RAM can reach it. This
 * example shows the scheme working as designed against DRAM attacks —
 * and then being defeated end-to-end by Volt Boot:
 *
 *   1. the victim installs an AES-128 schedule in v0..v10 and encrypts
 *      disk blocks with it; DRAM never sees key material;
 *   2. the attacker probes VDD_CORE, power cycles, reboots their own
 *      image, extracts the vector registers with vread/str;
 *   3. an aeskeyfind-style scan of the 512-byte register dump recovers
 *      the master key, which decrypts the stolen ciphertext.
 *
 * Pass a file name to also write a JSONL trace of the whole run — this
 * is the worked example walked through in docs/TRACING.md:
 *
 *   ./steal_aes_key trace.jsonl
 */

#include <cstdio>
#include <iostream>
#include <optional>

#include "core/attack.hh"
#include "crypto/key_finder.hh"
#include "crypto/onchip_crypto.hh"
#include "soc/soc.hh"
#include "trace/trace.hh"

using namespace voltboot;

int
main(int argc, char **argv)
{
    // Optional observability: stream every power/sram/soc/core event of
    // the run to argv[1] as JSONL.
    std::optional<trace::JsonlFileSink> sink;
    std::optional<trace::Scope> scope;
    if (argc > 1) {
        sink.emplace(argv[1]);
        scope.emplace(*sink);
    }

    Soc soc(SocConfig::bcm2837());
    soc.powerOn();

    // --- victim side ---
    const std::vector<uint8_t> disk_key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    TresorCipher tresor(soc.cpu(0), disk_key);
    std::cout << "victim: AES-128 schedule ("
              << tresor.scheduleBytes()
              << " bytes) installed in v0..v10; key never in RAM\n";

    std::array<uint8_t, 16> sector{};
    const char *plaintext = "TOP-SECRET-DATA";
    for (int i = 0; i < 15; ++i)
        sector[i] = static_cast<uint8_t>(plaintext[i]);
    auto ciphertext = sector;
    tresor.encryptBlock(ciphertext);
    std::cout << "victim: encrypted a disk sector\n";

    // Sanity: the key schedule is nowhere in DRAM.
    const auto schedule = Aes::expandKey(disk_key);
    std::vector<uint8_t> dram(soc.dramArray().sizeBytes());
    soc.dramArray().read(0, dram);
    const bool leaked =
        MemoryImage(dram).contains(
            std::span<const uint8_t>(schedule.data(), 32));
    std::cout << "key material in DRAM: " << (leaked ? "YES" : "no")
              << "  -> classic cold boot on DRAM finds nothing\n\n";

    // --- attacker side ---
    VoltBootAttack attack(soc);
    const AttackOutcome out = attack.execute();
    for (const auto &line : attack.trace())
        std::cout << line << "\n";
    if (!out.rebooted_into_attacker_code)
        return 1;

    const MemoryImage regs = attack.dumpVectorRegisters(0);
    std::cout << "\nattacker: 512-byte vector register dump in hand\n";

    KeyFinder finder;
    const auto hit = finder.best(regs);
    if (!hit) {
        std::cout << "no key schedule found\n";
        return 1;
    }
    std::cout << "aeskeyfind: AES-" << hit->key_bytes * 8
              << " schedule at register-file offset " << hit->offset
              << " with " << hit->bit_errors << " bit errors\n";
    std::cout << "recovered key: ";
    for (uint8_t b : hit->key)
        std::printf("%02x", b);
    std::cout << (hit->key == disk_key ? "  (matches victim's key)"
                                       : "  (MISMATCH)")
              << "\n";

    // Decrypt the stolen sector with the recovered key.
    Aes aes(hit->key);
    auto recovered = ciphertext;
    aes.decryptBlock(recovered);
    std::cout << "decrypted sector: "
              << std::string(reinterpret_cast<char *>(recovered.data()),
                             15)
              << "\n";
    return hit->key == disk_key ? 0 : 1;
}

#!/usr/bin/env python3
"""Fail on broken relative links in the repository's markdown files.

Scans every tracked *.md file for inline links/images ``[text](target)``
and reference definitions ``[label]: target``, resolves relative targets
against the linking file's directory, and reports any that do not exist.
External schemes (http/https/mailto) and pure in-page anchors (#...) are
skipped; a fragment on a relative link (FILE.md#section) is stripped
before the existence check. Exit code 1 if anything is broken.

Usage: tools/check_md_links.py [repo_root]
"""

import os
import re
import subprocess
import sys
import urllib.parse

INLINE = re.compile(r"!?\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.M)
FENCE = re.compile(r"^(```|~~~).*?^\1", re.M | re.S)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return sorted(set(out.stdout.split()))


def targets(text):
    # Links inside fenced code blocks are examples, not navigation.
    text = FENCE.sub("", text)
    for match in INLINE.finditer(text):
        yield match.group(1)
    for match in REFDEF.finditer(text):
        yield match.group(1)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    broken = []
    checked = 0
    for md in markdown_files(root):
        path = os.path.join(root, md)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for target in targets(text):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            rel = urllib.parse.unquote(target.split("#", 1)[0])
            if not rel:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), rel))
            checked += 1
            if not os.path.exists(resolved):
                broken.append(f"{md}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"checked {checked} relative links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Track bench-smoke throughput over time and catch regressions.

Appends one JSONL entry per invocation to a history file, built from
every ``BENCH_*.json`` artefact in the given directory: each numeric
``*_per_second`` field anywhere in an artefact becomes one keyed metric
(key = file stem + JSON path, e.g.
``BENCH_campaign/runs[1]/trials_per_second``). The new sample is then
compared against the rolling median of the last ``--window`` history
entries per metric: any metric that drops below
``(1 - threshold) * median`` fails the run.

The first invocation (empty history) always passes — it only seeds the
history. Metrics that appear or disappear between runs are reported but
never fail the gate, so bench additions/renames don't break CI.

Usage:
  tools/bench_history.py ARTIFACT_DIR [--history FILE.jsonl]
      [--threshold 0.15] [--window 5] [--label TEXT]

Exit code 1 on any regression, 2 on usage/IO errors.
"""

import argparse
import json
import os
import statistics
import sys


def walk_metrics(node, path, out):
    """Collect every numeric *_per_second field under ``node``."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}/{key}" if path else key
            if (key.endswith("_per_second")
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)):
                out[child] = float(value)
            else:
                walk_metrics(value, child, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk_metrics(value, f"{path}[{i}]", out)


def collect_artifacts(artifact_dir):
    """Metric dict from every BENCH_*.json in ``artifact_dir``."""
    metrics = {}
    names = sorted(n for n in os.listdir(artifact_dir)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        sys.exit(f"error: no BENCH_*.json artefacts in {artifact_dir}")
    for name in names:
        path = os.path.join(artifact_dir, name)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"error: cannot read {path}: {e}")
        stem = name[:-len(".json")]
        walk_metrics(doc, stem, metrics)
    return metrics


def read_history(history_path):
    entries = []
    if not os.path.exists(history_path):
        return entries
    with open(history_path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                # Torn tail write from a killed CI job: keep what parses.
                print(f"note: skipping malformed history line {line_no}")
    return entries


def main():
    ap = argparse.ArgumentParser(
        description="append bench artefacts to a throughput history "
                    "and fail on regressions vs the rolling median")
    ap.add_argument("artifact_dir",
                    help="directory holding BENCH_*.json artefacts")
    ap.add_argument("--history", default=None,
                    help="history JSONL path (default: "
                         "ARTIFACT_DIR/BENCH_history.jsonl)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed drop vs rolling median "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--window", type=int, default=5,
                    help="history entries in the rolling median "
                         "(default 5)")
    ap.add_argument("--label", default="",
                    help="free-form tag stored with the entry "
                         "(commit SHA, CI run id)")
    args = ap.parse_args()
    if not os.path.isdir(args.artifact_dir):
        sys.exit(f"error: {args.artifact_dir} is not a directory")
    history_path = args.history or os.path.join(
        args.artifact_dir, "BENCH_history.jsonl")

    metrics = collect_artifacts(args.artifact_dir)
    history = read_history(history_path)
    window = history[-args.window:]

    regressions = []
    for key in sorted(metrics):
        value = metrics[key]
        past = [e["metrics"][key] for e in window
                if key in e.get("metrics", {})]
        if not past:
            print(f"new    {key} = {value:.3f}")
            continue
        median = statistics.median(past)
        floor = (1.0 - args.threshold) * median
        status = "ok    "
        if median > 0 and value < floor:
            status = "REGR  "
            regressions.append(
                f"{key}: {value:.3f} < {floor:.3f} "
                f"(median of last {len(past)}: {median:.3f}, "
                f"threshold {args.threshold:.0%})")
        print(f"{status} {key} = {value:.3f} "
              f"(median {median:.3f}, floor {floor:.3f})")
    for key in sorted(set().union(
            *(e.get("metrics", {}).keys() for e in window))
            - set(metrics)) if window else []:
        print(f"gone   {key} (present in history, absent now)")

    entry = {"label": args.label, "metrics": metrics}
    with open(history_path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {len(metrics)} metric(s) to {history_path} "
          f"({len(history) + 1} entries)")

    if regressions:
        print("\nthroughput regressions detected:")
        for r in regressions:
            print(f"  {r}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Assert the live telemetry surfaces of a finished sweep are sane.

Given two mid-run /metrics scrapes, a /progress scrape, the heartbeat
JSONL stream, and the sweep result JSON, checks that:

  - both scrapes are well-formed Prometheus text exposition (every
    non-comment line is `name[{labels}] value` with a parseable value),
  - the trial counters never decrease between the two scrapes and the
    second scrape shows the sweep actually progressing,
  - /progress parses as JSON with the documented fields and a
    completion fraction in [0, 1],
  - every heartbeat line parses, sequence numbers are contiguous from
    1, exactly the last line carries `"final": true`, and its progress
    counts match the sweep result's summary exactly (the sweep ran to
    completion, so there is no one-interval slack to allow).

Usage:
  tools/check_live_telemetry.py SCRAPE1 SCRAPE2 PROGRESS_JSON \
      HEARTBEAT_JSONL SWEEP_JSON
Exits non-zero with a message on the first violated check.
"""

import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? '
    r'(-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$')


def fail(message):
    sys.exit(f"check_live_telemetry: FAIL: {message}")


def parse_exposition(path):
    """{metric name -> value} for a Prometheus text exposition file."""
    values = {}
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{line_no}: malformed sample line "
                     f"{line!r}")
            if m.group(3) not in ("NaN", "+Inf", "-Inf"):
                values[m.group(1)] = float(m.group(3))
    if not values:
        fail(f"{path}: no samples at all")
    return values


def main():
    if len(sys.argv) != 6:
        sys.exit(__doc__)
    scrape1_path, scrape2_path, progress_path, heartbeat_path, \
        sweep_path = sys.argv[1:6]

    scrape1 = parse_exposition(scrape1_path)
    scrape2 = parse_exposition(scrape2_path)
    for counter in ("voltboot_telemetry_trials_started",
                    "voltboot_telemetry_trials_completed",
                    "voltboot_telemetry_cells_processed"):
        if counter not in scrape1 or counter not in scrape2:
            fail(f"{counter} missing from a scrape")
        if scrape2[counter] < scrape1[counter]:
            fail(f"{counter} decreased between scrapes: "
                 f"{scrape1[counter]} -> {scrape2[counter]}")
    if scrape2["voltboot_telemetry_trials_started"] <= 0:
        fail("second scrape shows no trials started")

    with open(progress_path, encoding="utf-8") as f:
        progress = json.load(f)
    for key in ("total", "done", "complete", "trials_per_sec_ewma",
                "eta_s", "axes"):
        if key not in progress:
            fail(f"/progress missing key {key!r}")
    if not 0.0 <= progress["complete"] <= 1.0:
        fail(f"/progress complete={progress['complete']} out of range")
    for axis in progress["axes"]:
        if not 0 <= axis["position"] <= axis["size"]:
            fail(f"axis {axis['name']} position {axis['position']} "
                 f"outside [0, {axis['size']}]")

    beats = []
    with open(heartbeat_path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if not line.strip():
                continue
            try:
                beat = json.loads(line)
            except json.JSONDecodeError:
                fail(f"{heartbeat_path}:{line_no}: unparseable line "
                     "(the sweep exited cleanly; no torn tail allowed)")
            if beat.get("schema") != "voltboot-heartbeat-v1":
                fail(f"{heartbeat_path}:{line_no}: wrong schema")
            beats.append(beat)
    if len(beats) < 2:
        fail(f"only {len(beats)} heartbeat(s); expected a stream")
    for i, beat in enumerate(beats):
        if beat["seq"] != i + 1:
            fail(f"heartbeat seq gap: line {i + 1} has seq "
                 f"{beat['seq']}")
        if beat.get("final") != (i == len(beats) - 1):
            fail(f"heartbeat {beat['seq']}: misplaced final marker")

    with open(sweep_path, encoding="utf-8") as f:
        sweep = json.load(f)
    summary = sweep["summary"]
    last = beats[-1]["progress"]
    expect = {
        "completed": summary["ok"] + summary["attack_failed"] +
                     summary["errors"],
        "won": summary["ok"],
        "failed": summary["attack_failed"] + summary["errors"],
        "skipped": summary["skipped"],
    }
    for key, want in expect.items():
        if last[key] != want:
            fail(f"final heartbeat {key}={last[key]} but sweep "
                 f"summary implies {want}")

    print(f"check_live_telemetry: OK — {len(beats)} heartbeats, "
          f"final counts match the sweep result; scrapes well-formed "
          f"({len(scrape1)} and {len(scrape2)} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/**
 * @file
 * Calibration helper (not part of the shipped library): sweeps the
 * LinuxModel noise parameters and prints Table 4-style recovery numbers
 * so the defaults can be pinned to the paper's shape.
 */

#include <cstdio>

#include "core/analysis.hh"
#include "core/attack.hh"
#include "os/linux_model.hh"
#include "soc/soc.hh"

using namespace voltboot;

int
main()
{
    for (double noise : {0.015, 0.025, 0.040}) {
        for (size_t kb : {4, 8, 16, 32}) {
            double total = 0;
            int n = 0;
            for (uint64_t seed : {1ull, 2ull, 3ull}) {
                Soc soc(SocConfig::bcm2711());
                soc.powerOn();
                LinuxModelConfig cfg;
                cfg.seed = seed;
                cfg.kernel_noise_per_victim_access = noise;
                LinuxModel lm(soc, cfg);
                lm.boot();
                const auto truth = lm.runArrayBenchmark(kb * 1024);
                VoltBootAttack attack(soc);
                attack.execute();
                for (size_t core = 0; core < truth.size(); ++core) {
                    std::vector<MemoryImage> ways;
                    for (size_t w = 0; w < soc.config().l1d.ways; ++w)
                        ways.push_back(
                            attack.dumpL1Way(core, L1Ram::DData, w));
                    const ElementRecovery er =
                        recoverElements(ways, truth[core].elements);
                    total += er.fractionRecovered();
                    ++n;
                }
            }
            std::printf("noise=%5.0f  %2zuKB: %.4f\n", noise, kb,
                        total / n);
        }
    }
    return 0;
}

#!/usr/bin/env python3
"""Fail when docs/ATTACKS.md drifts from the attack/axis code.

Single source of truth for what exists:

 - The ``AttackKind`` enum (searched for in ``src/core/attack.hh`` and
   ``src/campaign/sweep_grid.hh`` -- it has moved once already) and its
   ``toString`` switch in ``src/campaign/sweep_grid.cc``, which names
   every attack the sweep engine accepts.
 - The ``axes[]`` table inside ``SweepGrid::axesHelp()`` in
   ``src/campaign/sweep_grid.cc``, which is exactly what
   ``voltboot_cli sweep --list-axes`` prints.

What docs/ATTACKS.md must provide:

 - one ``<a id="attack-NAME"></a>`` anchor per attack name, so every
   family has a stable deep-linkable section;
 - at least one backticked mention of every sweep-axis key, so the
   parameter tables cannot silently omit an axis.

Exit code 1 with a per-item report when anything is missing.

Usage: tools/check_attack_docs.py [repo_root]
"""

import os
import re
import sys

ENUM_FILES = ("src/core/attack.hh", "src/campaign/sweep_grid.hh")
GRID_CC = "src/campaign/sweep_grid.cc"
DOC = "docs/ATTACKS.md"

ENUM_RE = re.compile(r"enum\s+class\s+AttackKind\s*{([^}]*)}", re.S)
CASE_RE = re.compile(
    r'case\s+AttackKind::(\w+):\s*return\s+"([a-z0-9-]+)"')
AXIS_RE = re.compile(r'\{"([a-z0-9-]+)",')


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as fh:
        return fh.read()


def enum_members(root):
    for rel in ENUM_FILES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        match = ENUM_RE.search(read(root, rel))
        if match:
            body = re.sub(r"//[^\n]*", "", match.group(1))
            members = [m for m in re.findall(r"\b(\w+)\s*,?", body)]
            return rel, members
    return None, []


def attack_names(root):
    text = read(root, GRID_CC)
    # The first run of AttackKind cases is the toString switch.
    return {enum: name for enum, name in CASE_RE.findall(text)}


def axis_keys(root):
    text = read(root, GRID_CC)
    start = text.find("axesHelp")
    if start < 0:
        return []
    return AXIS_RE.findall(text[start:])


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    problems = []

    enum_file, members = enum_members(root)
    if not members:
        problems.append(
            "AttackKind enum not found in any of: " +
            ", ".join(ENUM_FILES))
    names = attack_names(root)
    for member in members:
        if member not in names:
            problems.append(
                f"{GRID_CC}: AttackKind::{member} (from {enum_file}) "
                "has no toString name")
    axes = axis_keys(root)
    if not axes:
        problems.append(f"{GRID_CC}: no axes[] table in axesHelp()")

    doc = read(root, DOC)
    for name in sorted(names.values()):
        anchor = f'<a id="attack-{name}"></a>'
        if anchor not in doc:
            problems.append(f"{DOC}: missing anchor {anchor}")
    for key in axes:
        if not re.search(r"`" + re.escape(key) + r"[=`]", doc):
            problems.append(
                f"{DOC}: sweep axis `{key}` is never mentioned "
                "in backticks")

    for line in problems:
        print(line, file=sys.stderr)
    print(f"checked {len(names)} attacks and {len(axes)} sweep axes "
          f"against {DOC}, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

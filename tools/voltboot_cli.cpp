/**
 * @file
 * voltboot — command-line driver for the attack toolkit.
 *
 * Subcommands:
 *   platforms                         list the device database
 *   attack   [options]                run Volt Boot end to end
 *   coldboot [options]                run the cold-boot control
 *   survey   [--board NAME]           countermeasure survey
 *   retention [--tech sram|dram]      survival surface
 *
 * Common options:
 *   --board pi3|pi4|imx53     target platform        (default pi4)
 *   --target dcache|icache|regs|iram|tlb|btb         (default dcache)
 *   --temp <celsius>          ambient temperature    (default 25)
 *   --off-ms <ms>             power-off interval     (default 500)
 *   --current <amps>          probe current limit    (default 3.0)
 *   --pad <label>             probe somewhere else (wrong-domain demo)
 */

#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/analysis.hh"
#include "core/attack.hh"
#include "core/countermeasures.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "soc/soc.hh"

using namespace voltboot;

namespace
{

struct Options
{
    std::string board = "pi4";
    std::string target = "dcache";
    double temp_c = 25.0;
    double off_ms = 500.0;
    double current = 3.0;
    std::string pad; // empty = the platform's documented attack pad
};

SocConfig
configFor(const std::string &board)
{
    if (board == "pi3")
        return SocConfig::bcm2837();
    if (board == "pi4")
        return SocConfig::bcm2711();
    if (board == "imx53")
        return SocConfig::imx535();
    fatal("unknown board '", board, "' (pi3|pi4|imx53)");
}

Options
parse(int argc, char **argv, int first)
{
    Options o;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--board")
            o.board = value();
        else if (flag == "--target")
            o.target = value();
        else if (flag == "--temp")
            o.temp_c = std::stod(value());
        else if (flag == "--off-ms")
            o.off_ms = std::stod(value());
        else if (flag == "--current")
            o.current = std::stod(value());
        else if (flag == "--pad")
            o.pad = value();
        else
            fatal("unknown option ", flag);
    }
    return o;
}

int
cmdPlatforms()
{
    TextTable t({"name", "board", "SoC", "CPU", "attack pad",
                 "target memories"});
    t.addRow({"pi3", "Raspberry Pi 3", "BCM2837", "4x Cortex-A53",
              "PP58 @ 1.2V", "L1D, L1I, registers"});
    t.addRow({"pi4", "Raspberry Pi 4", "BCM2711", "4x Cortex-A72",
              "TP15 @ 0.8V", "L1D, L1I, registers"});
    t.addRow({"imx53", "i.MX53 QSB", "i.MX535", "1x Cortex-A8",
              "SH13 @ 1.3V", "iRAM (JTAG)"});
    std::cout << t.render();
    return 0;
}

/** Prepare the standard victim for the selected target memory. */
void
prepareVictim(Soc &soc, const std::string &target)
{
    BareMetalRunner runner(soc);
    if (target == "regs") {
        for (size_t core = 0; core < soc.coreCount(); ++core)
            runner.runOn(core, workloads::vectorFill(0xFF, 0xAA));
    } else if (target == "iram") {
        if (!soc.iramArray())
            fatal("platform has no iRAM; use --board imx53");
        std::vector<uint8_t> img(soc.config().iram_bytes);
        for (size_t i = 0; i < img.size(); ++i)
            img[i] = static_cast<uint8_t>(i * 7 + 3);
        soc.jtag().writeIram(soc.config().iram_base, img);
    } else if (target == "icache") {
        for (size_t core = 0; core < soc.coreCount(); ++core)
            runner.runOn(core, workloads::nopFiller(2048));
    } else { // dcache / tlb / btb victims all run the pattern store
        const uint64_t base = soc.config().dram_base + 0x40000;
        runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
    }
}

int
cmdAttack(const Options &o)
{
    SocConfig cfg = configFor(o.board);
    Soc soc(cfg);
    soc.setAmbient(Temperature::celsius(o.temp_c));
    soc.powerOn();
    prepareVictim(soc, o.target);

    AttackConfig acfg;
    acfg.probe_max_current = Amp(o.current);
    acfg.off_time = Seconds::milliseconds(o.off_ms);
    VoltBootAttack attack(soc, acfg);

    AttackOutcome out = o.pad.empty() ? attack.attachProbe()
                                      : attack.attachProbeAt(o.pad);
    if (out.probe_attached)
        out = attack.powerCycleAndBoot();
    for (const auto &line : attack.trace())
        std::cout << line << "\n";
    if (!out.rebooted_into_attacker_code) {
        std::cout << "attack failed: " << out.failure_reason << "\n";
        return 1;
    }

    MemoryImage dump;
    if (o.target == "dcache")
        dump = attack.dumpL1(0, L1Ram::DData);
    else if (o.target == "icache")
        dump = attack.dumpL1(0, L1Ram::IData);
    else if (o.target == "regs")
        dump = attack.dumpVectorRegisters(0);
    else if (o.target == "iram")
        dump = attack.dumpIram();
    else if (o.target == "tlb")
        dump = attack.dumpDtlb(0);
    else if (o.target == "btb")
        dump = attack.dumpBtb(0);
    else
        fatal("unknown target '", o.target, "'");

    std::cout << "\ndump: " << dump.sizeBytes()
              << " bytes, ones density "
              << TextTable::num(dump.onesDensity(), 4)
              << ", byte entropy "
              << TextTable::num(dump.byteEntropy(), 2) << " bits\n";
    std::cout << dump.hexdump(128);
    return 0;
}

int
cmdColdBoot(const Options &o)
{
    SocConfig cfg = configFor(o.board);
    Soc soc(cfg);
    soc.powerOn();
    prepareVictim(soc, "dcache");

    ColdBootAttack attack(soc, Temperature::celsius(o.temp_c),
                          Seconds::milliseconds(o.off_ms));
    if (!attack.powerCycleAndBoot()) {
        std::cout << "boot failed (authenticated boot?)\n";
        return 1;
    }
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    const MemoryImage truth = MemoryImage::filled(dump.sizeBytes(), 0xAA);
    std::cout << "cold boot at " << o.temp_c << " degC, " << o.off_ms
              << " ms off\n";
    std::cout << "error vs stored pattern: "
              << TextTable::pct(
                     MemoryImage::fractionalHamming(dump, truth))
              << " (50% = nothing retained)\n";
    return 0;
}

int
cmdSurvey(const Options &o)
{
    TextTable t({"defence", "attack", "recovered", "notes"});
    for (const auto &row : surveyCountermeasures(configFor(o.board)))
        t.addRow({toString(row.defence),
                  row.attack_succeeded ? "SUCCEEDS" : "defeated",
                  TextTable::pct(row.recovered_fraction), row.notes});
    std::cout << t.render();
    return 0;
}

int
cmdRetention(const std::string &tech)
{
    const RetentionConfig cfg = tech == "dram" ? RetentionConfig::dram()
                                               : RetentionConfig::sram6t();
    const RetentionModel model(cfg, CellRng(1, 1));
    std::vector<std::string> header{"off \\ degC"};
    for (double t : {-140.0, -110.0, -80.0, -40.0, 0.0, 25.0})
        header.push_back(TextTable::num(t, 0));
    TextTable table(header);
    for (double ms : {0.5, 2.0, 20.0, 200.0, 2000.0}) {
        std::vector<std::string> row{TextTable::num(ms, 1) + " ms"};
        for (double t : {-140.0, -110.0, -80.0, -40.0, 0.0, 25.0})
            row.push_back(TextTable::pct(
                model.expectedSurvival(Seconds::milliseconds(ms),
                                       Temperature::celsius(t)),
                1));
        table.addRow(row);
    }
    std::cout << tech << " expected survival:\n" << table.render();
    return 0;
}

void
usage()
{
    std::cout
        << "usage: voltboot <platforms|attack|coldboot|survey|retention>"
           " [options]\n"
           "  attack   --board pi3|pi4|imx53 --target "
           "dcache|icache|regs|iram|tlb|btb\n"
           "           [--temp C] [--off-ms MS] [--current A] [--pad "
           "LABEL]\n"
           "  coldboot --board ... --temp C --off-ms MS\n"
           "  survey   [--board ...]\n"
           "  retention [--target sram|dram]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "platforms")
            return cmdPlatforms();
        const Options o = parse(argc, argv, 2);
        if (cmd == "attack")
            return cmdAttack(o);
        if (cmd == "coldboot")
            return cmdColdBoot(o);
        if (cmd == "survey")
            return cmdSurvey(o);
        if (cmd == "retention")
            return cmdRetention(o.target == "dram" ? "dram" : "sram");
        usage();
        return 2;
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

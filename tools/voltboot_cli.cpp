/**
 * @file
 * voltboot — command-line driver for the attack toolkit.
 *
 * Subcommands:
 *   platforms                         list the device database
 *   attack   [options]                run Volt Boot end to end
 *   coldboot [options]                run the cold-boot control
 *   survey   [--board NAME]           countermeasure survey
 *   retention [--tech sram|dram]      survival surface
 *   sweep    [options]                parallel attack-sweep campaign
 *   report   trace|campaign FILE      analyse traces / sweep results
 *                                     (trace: --cpa runs the coupling
 *                                     key-recovery analyzer)
 *
 * Common options:
 *   --board pi3|pi4|imx53     target platform        (default pi4)
 *   --target dcache|icache|regs|iram|tlb|btb         (default dcache)
 *   --temp <celsius>          ambient temperature    (default 25)
 *   --off-ms <ms>             power-off interval     (default 500)
 *   --current <amps>          probe current limit    (default 3.0)
 *   --pad <label>             probe somewhere else (wrong-domain demo)
 *   --retention-path fast|fast-cached|reference
 *                             retention kernel (default fast; all three
 *                             are bit-exact, see docs/PERFORMANCE.md)
 *   --trace FILE              write a JSONL event trace
 *   --trace-chrome FILE       write a chrome://tracing / Perfetto trace
 *   --metrics FILE            write the wall-clock metrics snapshot
 *
 * Sweep options:
 *   --grid SPEC|FILE          sweep grid (see docs/CAMPAIGN.md)
 *   --attack NAME             override the grid's attack axis; without
 *                             --grid, sweeps the default grid
 *   --jobs N                  worker threads         (default: all cores)
 *   --seed S                  campaign seed          (default 0x5eed)
 *   --out FILE                write results as JSON
 *   --csv FILE                write results as CSV
 *   --timing                  include wall-clock section in the JSON
 *   --trace-dir DIR           one deterministic JSONL trace per trial
 *                             (plus a non-canonical progress.jsonl)
 *   --metrics FILE            write the engine metrics snapshot
 *   --metrics-port N          live /metrics | /healthz | /progress HTTP
 *                             endpoints while the sweep runs (0 picks an
 *                             ephemeral port, printed at startup)
 *   --heartbeat FILE          append one telemetry JSONL line per
 *                             sampling interval (crash-tolerant)
 *   --telemetry-interval S    sampler cadence (default 1 s)
 *   --retention-path PATH     retention kernel, as for attack/coldboot
 *
 * Trace files are deterministic (simulation-time stamps only); metrics
 * files carry wall-clock timings and are not. See docs/TRACING.md.
 *
 * Unknown flags and malformed numeric values are rejected with a usage
 * hint and a non-zero exit code.
 */

#include <atomic>
#include <charconv>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "report/campaign_json.hh"
#include "sidechannel/coupling.hh"
#include "report/invariants.hh"
#include "report/prometheus.hh"
#include "report/report.hh"
#include "report/heartbeat.hh"
#include "report/trace_reader.hh"
#include "telemetry/counters.hh"
#include "telemetry/http_server.hh"
#include "telemetry/monitor.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "core/analysis.hh"
#include "core/attack.hh"
#include "core/countermeasures.hh"
#include "os/baremetal.hh"
#include "os/workloads.hh"
#include "sim/logging.hh"
#include "soc/soc.hh"
#include "sram/retention_kernel.hh"

using namespace voltboot;

namespace
{

/** User error that should additionally print the usage text. */
class UsageError : public FatalError
{
  public:
    using FatalError::FatalError;
};

template <typename... Args>
[[noreturn]] void
usageFatal(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    throw UsageError(os.str());
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size())
        usageFatal("malformed numeric value '", text, "' for ", flag);
    return value;
}

uint64_t
parseUint(const std::string &flag, const std::string &text)
{
    uint64_t value = 0;
    // Accept 0x-prefixed seeds.
    int base = 10;
    const char *begin = text.data();
    const char *end = text.data() + text.size();
    if (text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
        base = 16;
        begin += 2;
    }
    const auto [ptr, ec] = std::from_chars(begin, end, value, base);
    if (ec != std::errc() || ptr != end || begin == end)
        usageFatal("malformed numeric value '", text, "' for ", flag);
    return value;
}

/** Select the process-wide retention kernel from a --retention-path
 * value; rejects anything but fast|fast-cached|reference. */
void
selectRetentionPath(const std::string &text)
{
    RetentionKernel kernel;
    if (!parseRetentionKernel(text, kernel))
        usageFatal("unknown retention path '", text,
                   "' (expected fast, fast-cached or reference)");
    setRetentionKernel(kernel);
}

/**
 * Write @p content to @p path, or to stdout when @p path is `-`.
 * File writes announce themselves; stdout stays clean so output can be
 * piped.
 */
void
writeOutput(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::cout << content;
        return;
    }
    CampaignResult::writeFile(path, content);
    std::cout << "wrote " << path << "\n";
}

struct Options
{
    std::string board = "pi4";
    std::string target = "dcache";
    double temp_c = 25.0;
    double off_ms = 500.0;
    double current = 3.0;
    std::string pad; // empty = the platform's documented attack pad

    std::string trace;        // JSONL trace output, empty = off
    std::string trace_chrome; // Chrome trace-event output, empty = off
    std::string metrics;      // wall-clock metrics snapshot, empty = off
};

SocConfig
configFor(const std::string &board)
{
    return socConfigFor(board);
}

Options
parse(int argc, char **argv, int first)
{
    Options o;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--board")
            o.board = value();
        else if (flag == "--target")
            o.target = value();
        else if (flag == "--temp")
            o.temp_c = parseDouble(flag, value());
        else if (flag == "--off-ms")
            o.off_ms = parseDouble(flag, value());
        else if (flag == "--current")
            o.current = parseDouble(flag, value());
        else if (flag == "--pad")
            o.pad = value();
        else if (flag == "--retention-path")
            selectRetentionPath(value());
        else if (flag == "--trace")
            o.trace = value();
        else if (flag == "--trace-chrome")
            o.trace_chrome = value();
        else if (flag == "--metrics")
            o.metrics = value();
        else
            usageFatal("unknown option ", flag);
    }
    return o;
}

/**
 * Run @p body under this thread's trace/metrics scopes when any of the
 * observability flags were given, then write the requested files. The
 * trace files carry only simulation-time stamps and are deterministic;
 * the metrics file is wall-clock derived and is not.
 */
int
withObservability(const Options &o, const std::function<int()> &body)
{
    if (o.trace.empty() && o.trace_chrome.empty() && o.metrics.empty())
        return body();

    trace::MemoryTraceSink sink;
    trace::Metrics metrics;
    int rc;
    {
        trace::Scope scope(sink);
        trace::MetricsScope metrics_scope(&metrics);
        rc = body();
    }
    if (!o.trace.empty()) {
        CampaignResult::writeFile(o.trace, trace::toJsonl(sink.events()));
        std::cout << "wrote " << o.trace << " (" << sink.events().size()
                  << " events)\n";
    }
    if (!o.trace_chrome.empty()) {
        CampaignResult::writeFile(o.trace_chrome,
                                  trace::toChromeTrace(sink.events()));
        std::cout << "wrote " << o.trace_chrome << "\n";
    }
    if (!o.metrics.empty())
        writeOutput(o.metrics, metrics.snapshot().toJson() + "\n");
    return rc;
}

int
cmdPlatforms()
{
    TextTable t({"name", "board", "SoC", "CPU", "attack pad",
                 "target memories"});
    t.addRow({"pi3", "Raspberry Pi 3", "BCM2837", "4x Cortex-A53",
              "PP58 @ 1.2V", "L1D, L1I, registers"});
    t.addRow({"pi4", "Raspberry Pi 4", "BCM2711", "4x Cortex-A72",
              "TP15 @ 0.8V", "L1D, L1I, registers"});
    t.addRow({"imx53", "i.MX53 QSB", "i.MX535", "1x Cortex-A8",
              "SH13 @ 1.3V", "iRAM (JTAG)"});
    std::cout << t.render();
    return 0;
}

/** Prepare the standard victim for the selected target memory. */
void
prepareVictim(Soc &soc, const std::string &target)
{
    BareMetalRunner runner(soc);
    if (target == "regs") {
        for (size_t core = 0; core < soc.coreCount(); ++core)
            runner.runOn(core, workloads::vectorFill(0xFF, 0xAA));
    } else if (target == "iram") {
        if (!soc.iramArray())
            fatal("platform has no iRAM; use --board imx53");
        std::vector<uint8_t> img(soc.config().iram_bytes);
        for (size_t i = 0; i < img.size(); ++i)
            img[i] = static_cast<uint8_t>(i * 7 + 3);
        soc.jtag().writeIram(soc.config().iram_base, img);
    } else if (target == "icache") {
        for (size_t core = 0; core < soc.coreCount(); ++core)
            runner.runOn(core, workloads::nopFiller(2048));
    } else { // dcache / tlb / btb victims all run the pattern store
        const uint64_t base = soc.config().dram_base + 0x40000;
        runner.runOn(0, workloads::patternStore(base, 8192, 0xAA));
    }
}

int
cmdAttack(const Options &o)
{
    SocConfig cfg = configFor(o.board);
    Soc soc(cfg);
    soc.setAmbient(Temperature::celsius(o.temp_c));
    soc.powerOn();
    prepareVictim(soc, o.target);

    AttackConfig acfg;
    acfg.probe_max_current = Amp(o.current);
    acfg.off_time = Seconds::milliseconds(o.off_ms);
    VoltBootAttack attack(soc, acfg);

    AttackOutcome out = o.pad.empty() ? attack.attachProbe()
                                      : attack.attachProbeAt(o.pad);
    if (out.probe_attached)
        out = attack.powerCycleAndBoot();
    for (const auto &line : attack.trace())
        std::cout << line << "\n";
    if (!out.rebooted_into_attacker_code) {
        std::cout << "attack failed: " << out.failure_reason << "\n";
        return 1;
    }

    MemoryImage dump;
    if (o.target == "dcache")
        dump = attack.dumpL1(0, L1Ram::DData);
    else if (o.target == "icache")
        dump = attack.dumpL1(0, L1Ram::IData);
    else if (o.target == "regs")
        dump = attack.dumpVectorRegisters(0);
    else if (o.target == "iram")
        dump = attack.dumpIram();
    else if (o.target == "tlb")
        dump = attack.dumpDtlb(0);
    else if (o.target == "btb")
        dump = attack.dumpBtb(0);
    else
        usageFatal("unknown target '", o.target, "'");

    std::cout << "\ndump: " << dump.sizeBytes()
              << " bytes, ones density "
              << TextTable::num(dump.onesDensity(), 4)
              << ", byte entropy "
              << TextTable::num(dump.byteEntropy(), 2) << " bits\n";
    std::cout << dump.hexdump(128);
    return 0;
}

int
cmdColdBoot(const Options &o)
{
    SocConfig cfg = configFor(o.board);
    Soc soc(cfg);
    soc.powerOn();
    prepareVictim(soc, "dcache");

    ColdBootAttack attack(soc, Temperature::celsius(o.temp_c),
                          Seconds::milliseconds(o.off_ms));
    if (!attack.powerCycleAndBoot()) {
        std::cout << "boot failed (authenticated boot?)\n";
        return 1;
    }
    const MemoryImage dump = attack.dumpL1(0, L1Ram::DData);
    const MemoryImage truth = MemoryImage::filled(dump.sizeBytes(), 0xAA);
    std::cout << "cold boot at " << o.temp_c << " degC, " << o.off_ms
              << " ms off\n";
    std::cout << "error vs stored pattern: "
              << TextTable::pct(
                     MemoryImage::fractionalHamming(dump, truth))
              << " (50% = nothing retained)\n";
    return 0;
}

int
cmdSurvey(const Options &o)
{
    TextTable t({"defence", "attack", "recovered", "notes"});
    for (const auto &row : surveyCountermeasures(configFor(o.board)))
        t.addRow({toString(row.defence),
                  row.attack_succeeded ? "SUCCEEDS" : "defeated",
                  TextTable::pct(row.recovered_fraction), row.notes});
    std::cout << t.render();
    return 0;
}

int
cmdRetention(const std::string &tech)
{
    const RetentionConfig cfg = tech == "dram" ? RetentionConfig::dram()
                                               : RetentionConfig::sram6t();
    const RetentionModel model(cfg, CellRng(1, 1));
    std::vector<std::string> header{"off \\ degC"};
    for (double t : {-140.0, -110.0, -80.0, -40.0, 0.0, 25.0})
        header.push_back(TextTable::num(t, 0));
    TextTable table(header);
    for (double ms : {0.5, 2.0, 20.0, 200.0, 2000.0}) {
        std::vector<std::string> row{TextTable::num(ms, 1) + " ms"};
        for (double t : {-140.0, -110.0, -80.0, -40.0, 0.0, 25.0})
            row.push_back(TextTable::pct(
                model.expectedSurvival(Seconds::milliseconds(ms),
                                       Temperature::celsius(t)),
                1));
        table.addRow(row);
    }
    std::cout << tech << " expected survival:\n" << table.render();
    return 0;
}

struct SweepOptions
{
    std::string grid;
    std::string attack; // override / sole attack, empty = per-grid
    unsigned jobs = 0;  // 0 = hardware concurrency
    uint64_t seed = 0x5eed;
    std::string out_json;
    std::string out_csv;
    bool timing = false;
    bool quiet = false;
    bool list_axes = false; // print the axis table and exit
    std::string trace_dir; // per-trial JSONL traces, empty = off
    std::string metrics;   // engine metrics snapshot, empty = off
    int metrics_port = -1; // /metrics HTTP port; -1 = off, 0 = ephemeral
    std::string heartbeat; // heartbeat JSONL stream, empty = off
    double telemetry_interval_s = 1.0; // sampler cadence
};

SweepOptions
parseSweep(int argc, char **argv, int first)
{
    SweepOptions o;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--grid")
            o.grid = value();
        else if (flag == "--attack")
            o.attack = value();
        else if (flag == "--jobs")
            o.jobs = static_cast<unsigned>(parseUint(flag, value()));
        else if (flag == "--seed")
            o.seed = parseUint(flag, value());
        else if (flag == "--retention-path")
            selectRetentionPath(value());
        else if (flag == "--out")
            o.out_json = value();
        else if (flag == "--csv")
            o.out_csv = value();
        else if (flag == "--timing")
            o.timing = true;
        else if (flag == "--quiet")
            o.quiet = true;
        else if (flag == "--trace-dir")
            o.trace_dir = value();
        else if (flag == "--metrics")
            o.metrics = value();
        else if (flag == "--metrics-port") {
            const uint64_t port = parseUint(flag, value());
            if (port > 65535)
                usageFatal("--metrics-port out of range: ", port);
            o.metrics_port = static_cast<int>(port);
        } else if (flag == "--heartbeat")
            o.heartbeat = value();
        else if (flag == "--telemetry-interval") {
            o.telemetry_interval_s = parseDouble(flag, value());
            if (o.telemetry_interval_s <= 0.0)
                usageFatal("--telemetry-interval must be positive");
        } else if (flag == "--list-axes")
            o.list_axes = true;
        else
            usageFatal("unknown option ", flag);
    }
    if (o.grid.empty() && o.attack.empty() && !o.list_axes)
        usageFatal("sweep requires --grid SPEC (or --grid FILE, or "
                   "--attack NAME for the default grid)");
    return o;
}

/** The campaign the SIGINT/SIGTERM handler aborts, when one is live. */
std::atomic<Campaign *> g_signal_campaign{nullptr};

/**
 * First ^C: request a graceful abort — remaining trials are marked
 * skipped, the run unwinds normally, and the tail code still flushes
 * metrics and the final heartbeat. requestAbort() is one relaxed
 * atomic store, so this is async-signal-safe. A second ^C hits the
 * default handler (restored after the run) and force-kills.
 */
void
abortSignalHandler(int)
{
    if (Campaign *campaign =
            g_signal_campaign.load(std::memory_order_relaxed))
        campaign->requestAbort();
}

/** Axes of @p grid that actually vary, slowest-varying first (the
 * SweepGrid::at() decode order), for /progress completion. */
std::vector<telemetry::AxisDesc>
monitorAxes(const SweepGrid &grid)
{
    const std::pair<const char *, uint64_t> all[] = {
        {"board", grid.boards.size()},
        {"target", grid.targets.size()},
        {"attack", grid.attacks.size()},
        {"temp", grid.temps_c.size()},
        {"off-ms", grid.offs_ms.size()},
        {"current", grid.currents_a.size()},
        {"impedance-mohm", grid.impedances_mohm.size()},
        {"glitch-off-ns", grid.glitch_offs_ns.size()},
        {"glitch-width-ns", grid.glitch_widths_ns.size()},
        {"glitch-depth", grid.glitch_depths_v.size()},
        {"undervolt-depth", grid.undervolt_depths_v.size()},
        {"hold-ns", grid.holds_ns.size()},
        {"readout-rate", grid.readout_rates.size()},
        {"cpa-window-ns", grid.cpa_windows_ns.size()},
        {"dumps", grid.dump_counts.size()},
        {"prior", grid.use_priors.size()},
        {"key", grid.plant_key.size()},
        {"seeds", grid.seed_count},
    };
    std::vector<telemetry::AxisDesc> axes;
    for (const auto &[name, size] : all)
        if (size > 1)
            axes.push_back({name, size});
    return axes;
}

int
cmdSweep(const SweepOptions &o)
{
    if (o.list_axes) {
        std::cout << SweepGrid::axesHelp();
        return 0;
    }
    // --grid takes an inline spec or the name of a spec file; with
    // --attack alone the default grid is used.
    SweepGrid grid;
    if (!o.grid.empty()) {
        std::string spec = o.grid;
        if (std::ifstream file(o.grid); file) {
            std::ostringstream content;
            content << file.rdbuf();
            spec = content.str();
        }
        grid = SweepGrid::parse(spec);
    }
    if (!o.attack.empty())
        grid.attacks = {attackFromString(o.attack)};

    CampaignConfig cfg;
    cfg.jobs = o.jobs;
    cfg.seed = o.seed;
    cfg.trace_dir = o.trace_dir;
    const bool tracing = !o.trace_dir.empty();
    // Campaign progress doubles as a counter-event source: with a
    // trace dir, each report lands as `campaign/progress.*` Counter
    // events in <trace-dir>/progress.jsonl. The stream is wall-clock
    // timed and non-canonical; per-trial traces stay deterministic.
    std::vector<trace::TraceEvent> progress_events;
    if (!o.quiet || tracing) {
        // Report every progress_every trials and at least every two
        // seconds, so slow grids (imx53 iRAM) still show life.
        cfg.progress_interval = Seconds(2.0);
        cfg.progress = [&progress_events, quiet = o.quiet,
                        tracing](const CampaignProgress &p) {
            if (tracing) {
                // Serialized by the campaign's progress lock.
                auto counterEvent = [&](const char *name, double v) {
                    trace::TraceEvent ev;
                    ev.phase = trace::Phase::Counter;
                    ev.category = "campaign";
                    ev.name = name;
                    ev.ts = Seconds(p.elapsed_s);
                    ev.args.push_back(
                        {"v", v});
                    progress_events.push_back(std::move(ev));
                };
                counterEvent("progress.done",
                             static_cast<double>(p.done));
                counterEvent("progress.trials_per_sec",
                             p.trials_per_sec);
                counterEvent("progress.eta_s", p.eta_s);
            }
            if (!quiet) {
                std::fprintf(
                    stderr,
                    "\r%llu/%llu trials  %.1f trials/s  ETA %.0fs ",
                    static_cast<unsigned long long>(p.done),
                    static_cast<unsigned long long>(p.total),
                    p.trials_per_sec, p.eta_s);
                if (p.done == p.total)
                    std::fprintf(stderr, "\n");
            }
        };
    }

    // Live telemetry: sampler + optional heartbeat stream + optional
    // /metrics endpoint. Counters are process-wide, so start from zero
    // for this sweep.
    telemetry::resetCounters();
    telemetry::MonitorConfig mcfg;
    mcfg.interval_s = o.telemetry_interval_s;
    mcfg.total_trials = grid.size();
    mcfg.campaign_seed = o.seed;
    mcfg.grid_spec = grid.describe();
    mcfg.axes = monitorAxes(grid);
    mcfg.heartbeat_path = o.heartbeat;
    telemetry::CampaignMonitor monitor(mcfg);
    const bool monitoring = o.metrics_port >= 0 || !o.heartbeat.empty();
    if (monitoring)
        monitor.start();

    std::unique_ptr<telemetry::HttpServer> server;
    if (o.metrics_port >= 0) {
        server = std::make_unique<telemetry::HttpServer>(
            static_cast<uint16_t>(o.metrics_port),
            [&monitor](const std::string &path) {
                telemetry::HttpResponse resp;
                if (path == "/metrics") {
                    resp.content_type =
                        "text/plain; version=0.0.4; charset=utf-8";
                    resp.body =
                        report::toPrometheus(monitor.metricsSnapshot());
                } else if (path == "/healthz") {
                    resp.body = "ok\n";
                } else if (path == "/progress") {
                    resp.content_type = "application/json";
                    resp.body = monitor.progressJson();
                } else {
                    resp.status = 404;
                    resp.body = "unknown endpoint " + path + "\n";
                }
                return resp;
            });
        std::cout << "telemetry: serving /metrics /healthz /progress "
                     "on port "
                  << server->port() << "\n";
    }

    Campaign campaign(std::move(grid), std::move(cfg));
    g_signal_campaign.store(&campaign, std::memory_order_relaxed);
    std::signal(SIGINT, abortSignalHandler);
    std::signal(SIGTERM, abortSignalHandler);
    const CampaignResult result = campaign.run();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_signal_campaign.store(nullptr, std::memory_order_relaxed);

    // Final sample + heartbeat (flagged `"final": true`) before any
    // result files are written, so a consumer tailing the stream sees
    // the end of the run as soon as the campaign is over.
    if (monitoring)
        monitor.stop();
    if (server)
        server->stop();
    const CampaignSummary s = result.summary();

    TextTable t({"trials", "ok", "attack failed", "errors", "skipped",
                 "mean accuracy", "trials/s"});
    t.addRow({std::to_string(s.trials), std::to_string(s.ok),
              std::to_string(s.attack_failed), std::to_string(s.errors),
              std::to_string(s.skipped), TextTable::pct(s.accuracy.mean()),
              TextTable::num(result.trialsPerSecond(), 1)});
    std::cout << t.render();
    if (s.keys_planted)
        std::cout << "keys: " << s.keys_planted << " planted, "
                  << s.keys_found << " found, " << s.keys_exact
                  << " exact\n";
    if (s.glitch_trials)
        std::cout << "glitch: " << s.glitch_trials << " trials, "
                  << s.glitch_bypassed << " bypassed\n";
    if (s.static_trials)
        std::cout << "static-extract: " << s.static_trials
                  << " trials, " << s.static_frozen << " frozen\n";
    if (s.coupling_trials)
        std::cout << "coupling: " << s.coupling_trials << " trials, "
                  << s.cpa_key_bytes << " CPA key bytes recovered\n";
    if (s.keyrecovery_trials)
        std::cout << "key-recovery: " << s.keyrecovery_trials
                  << " trials, " << s.keyrecovery_exact
                  << " exact keys\n";

    if (!o.out_json.empty()) {
        CampaignResult::writeFile(o.out_json, result.toJson(o.timing));
        std::cout << "wrote " << o.out_json << "\n";
    }
    if (!o.out_csv.empty()) {
        CampaignResult::writeFile(o.out_csv, result.toCsv());
        std::cout << "wrote " << o.out_csv << "\n";
    }
    if (!o.trace_dir.empty()) {
        std::cout << "wrote " << s.trials << " trial traces to "
                  << o.trace_dir << "\n";
        if (!progress_events.empty()) {
            const std::string path =
                (std::filesystem::path(o.trace_dir) / "progress.jsonl")
                    .string();
            CampaignResult::writeFile(
                path, trace::toJsonl(progress_events));
            std::cout << "wrote " << path << " ("
                      << progress_events.size() << " progress events)\n";
        }
    }
    if (!o.metrics.empty())
        writeOutput(o.metrics, result.metrics.toJson() + "\n");
    return s.errors || s.skipped ? 1 : 0;
}

struct ReportOptions
{
    std::string mode;  // "trace" | "campaign"
    std::string input; // JSONL trace or sweep JSON
    std::string out = "-";
    std::string trace_dir; // campaign only
    std::string baseline;  // campaign only
    std::string heartbeat; // campaign only: join a heartbeat stream
    std::string format = "md"; // md | prom (campaign only)
    bool check = false;
    bool cpa = false; // trace only: run the CPA key-recovery analyzer
    double cpa_window_ns = 0.0; // 0 = correlate over the full block
    double regress_threshold = 0.5;
};

ReportOptions
parseReport(int argc, char **argv, int first)
{
    ReportOptions o;
    std::vector<std::string> positional;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageFatal("missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--out")
            o.out = value();
        else if (flag == "--trace-dir")
            o.trace_dir = value();
        else if (flag == "--baseline")
            o.baseline = value();
        else if (flag == "--heartbeat")
            o.heartbeat = value();
        else if (flag == "--format")
            o.format = value();
        else if (flag == "--check")
            o.check = true;
        else if (flag == "--cpa")
            o.cpa = true;
        else if (flag == "--cpa-window-ns")
            o.cpa_window_ns = parseDouble(flag, value());
        else if (flag == "--regress-threshold")
            o.regress_threshold = parseDouble(flag, value());
        else if (!flag.empty() && flag[0] == '-' && flag != "-")
            usageFatal("unknown option ", flag);
        else
            positional.push_back(flag);
    }
    if (positional.size() != 2)
        usageFatal("report requires a mode and an input file: "
                   "report trace FILE.jsonl | report campaign "
                   "SWEEP.json");
    o.mode = positional[0];
    o.input = positional[1];
    if (o.mode != "trace" && o.mode != "campaign")
        usageFatal("unknown report mode '", o.mode,
                   "' (expected trace or campaign)");
    if (o.format != "md" && o.format != "prom")
        usageFatal("unknown report format '", o.format,
                   "' (expected md or prom)");
    if (o.mode == "trace") {
        if (!o.trace_dir.empty())
            usageFatal("--trace-dir is only valid for report campaign");
        if (!o.baseline.empty())
            usageFatal("--baseline is only valid for report campaign");
        if (!o.heartbeat.empty())
            usageFatal("--heartbeat is only valid for report campaign");
        if (o.format == "prom")
            usageFatal("--format prom is only valid for report "
                       "campaign");
    } else if (o.cpa || o.cpa_window_ns != 0.0) {
        usageFatal("--cpa/--cpa-window-ns are only valid for report "
                   "trace");
    }
    return o;
}

int
cmdReport(const ReportOptions &o)
{
    if (o.mode == "trace") {
        const std::vector<trace::TraceEvent> events =
            report::readTraceFile(o.input);
        if (o.cpa) {
            sidechannel::CpaOptions copts;
            copts.window_ns = o.cpa_window_ns;
            const sidechannel::CpaResult cpa =
                sidechannel::analyzeCoupling(events, copts);
            writeOutput(o.out, sidechannel::renderCpaMarkdown(cpa));
            if (o.check) {
                const auto violations =
                    report::checkTraceInvariants(events);
                if (!violations.empty()) {
                    std::cerr << "trace invariant check FAILED:\n"
                              << report::renderViolations(violations);
                    return 1;
                }
            }
            // No AES blocks in the trace means the analyzer was
            // pointed at the wrong capture, which deserves a non-zero
            // exit even though the markdown explains it.
            return cpa.blocks == 0 ? 1 : 0;
        }
        const report::TraceReport rep =
            report::buildTraceReport(events, o.input, o.check);
        writeOutput(o.out, rep.markdown);
        if (!rep.violations.empty()) {
            std::cerr << "trace invariant check FAILED:\n"
                      << report::renderViolations(rep.violations);
            return 1;
        }
        return 0;
    }

    const report::SweepDoc sweep = report::readSweepFile(o.input);

    report::Baseline baseline;
    report::CampaignReportOptions opts;
    opts.trace_dir = o.trace_dir;
    opts.check = o.check;
    opts.heartbeat_path = o.heartbeat;
    opts.regression_threshold = o.regress_threshold;
    if (!o.baseline.empty()) {
        baseline = report::readBaselineFile(o.baseline);
        opts.baseline = &baseline;
    }

    if (o.format == "prom") {
        if (!sweep.has_timing || sweep.metrics.empty())
            fatal("sweep '", o.input,
                  "' carries no metrics snapshot; rerun the sweep "
                  "with --timing");
        writeOutput(o.out, report::toPrometheus(sweep.metrics));
        return 0;
    }

    const report::CampaignReport rep =
        report::buildCampaignReport(sweep, opts);
    writeOutput(o.out, rep.markdown);
    if (!rep.problems.empty()) {
        std::cerr << "campaign report found "
                  << rep.problems.size() << " problem(s):\n";
        for (const std::string &p : rep.problems)
            std::cerr << "  " << p << "\n";
        return 1;
    }
    return 0;
}

void
usage(std::ostream &out)
{
    out << "usage: voltboot "
           "<platforms|attack|coldboot|survey|retention|sweep|report>"
           " [options]\n"
           "  attack   --board pi3|pi4|imx53 --target "
           "dcache|icache|regs|iram|tlb|btb\n"
           "           [--temp C] [--off-ms MS] [--current A] [--pad "
           "LABEL]\n"
           "           [--trace FILE.jsonl] [--trace-chrome FILE.json] "
           "[--metrics FILE]\n"
           "           [--retention-path fast|fast-cached|reference]\n"
           "  coldboot --board ... --temp C --off-ms MS [--trace ...]\n"
           "  survey   [--board ...]\n"
           "  retention [--target sram|dram]\n"
           "  sweep    --grid SPEC|FILE [--attack NAME] [--jobs N] "
           "[--seed S]\n"
           "           [--out results.json] [--csv results.csv] "
           "[--timing] [--quiet]\n"
           "           [--trace-dir DIR] [--metrics FILE] "
           "[--list-axes]\n"
           "           [--metrics-port N] [--heartbeat FILE.jsonl]\n"
           "           [--telemetry-interval SECONDS]\n"
           "           [--retention-path fast|fast-cached|reference]\n"
           "           --metrics-port serves live /metrics /healthz "
           "/progress\n"
           "           over HTTP while the sweep runs (0 = ephemeral "
           "port);\n"
           "           --heartbeat appends one telemetry JSONL line "
           "per\n"
           "           interval (crash-tolerant; see "
           "docs/TELEMETRY.md).\n"
           "           grid SPEC example: "
           "\"board=pi4;attack=coldboot;temp=-80,-40;off-ms=5,50;"
           "seeds=8\"\n"
           "           --attack overrides the grid's attack axis "
           "(voltboot,\n"
           "           coldboot, glitch, static-extract, "
           "voltage-coupling,\n"
           "           key-recovery) and\n"
           "           may be used without --grid for the default "
           "grid.\n"
           "           --list-axes prints every grid axis (key, unit, "
           "default,\n"
           "           accepted values) and exits.\n"
           "  report   trace FILE.jsonl [--check] [--cpa] "
           "[--cpa-window-ns N]\n"
           "           [--out FILE|-]\n"
           "  report   campaign SWEEP.json [--trace-dir DIR]\n"
           "           [--baseline BENCH.json] [--heartbeat "
           "FILE.jsonl]\n"
           "           [--format md|prom] [--check]\n"
           "           [--regress-threshold X] [--out FILE|-]\n"
           "  `-` as an output path (--out, --metrics) writes to "
           "stdout.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(std::cout);
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "platforms")
            return cmdPlatforms();
        if (cmd == "sweep")
            return cmdSweep(parseSweep(argc, argv, 2));
        if (cmd == "report")
            return cmdReport(parseReport(argc, argv, 2));
        const Options o = parse(argc, argv, 2);
        if (cmd == "attack")
            return withObservability(o, [&] { return cmdAttack(o); });
        if (cmd == "coldboot")
            return withObservability(o, [&] { return cmdColdBoot(o); });
        if (cmd == "survey")
            return cmdSurvey(o);
        if (cmd == "retention")
            return cmdRetention(o.target == "dram" ? "dram" : "sram");
        std::cerr << "error: unknown subcommand '" << cmd << "'\n";
        usage(std::cerr);
        return 2;
    } catch (const UsageError &e) {
        std::cerr << "error: " << e.what() << "\n";
        usage(std::cerr);
        return 2;
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

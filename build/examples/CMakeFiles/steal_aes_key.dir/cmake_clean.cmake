file(REMOVE_RECURSE
  "CMakeFiles/steal_aes_key.dir/steal_aes_key.cpp.o"
  "CMakeFiles/steal_aes_key.dir/steal_aes_key.cpp.o.d"
  "steal_aes_key"
  "steal_aes_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steal_aes_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for steal_aes_key.
# This may be replaced when dependencies are built.

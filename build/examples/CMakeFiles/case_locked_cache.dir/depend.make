# Empty dependencies file for case_locked_cache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/case_locked_cache.dir/case_locked_cache.cpp.o"
  "CMakeFiles/case_locked_cache.dir/case_locked_cache.cpp.o.d"
  "case_locked_cache"
  "case_locked_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_locked_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cache_forensics.dir/cache_forensics.cpp.o"
  "CMakeFiles/cache_forensics.dir/cache_forensics.cpp.o.d"
  "cache_forensics"
  "cache_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

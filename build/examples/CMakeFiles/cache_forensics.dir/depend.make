# Empty dependencies file for cache_forensics.
# This may be replaced when dependencies are built.

# Empty dependencies file for coldboot_vs_voltboot.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coldboot_vs_voltboot.dir/coldboot_vs_voltboot.cpp.o"
  "CMakeFiles/coldboot_vs_voltboot.dir/coldboot_vs_voltboot.cpp.o.d"
  "coldboot_vs_voltboot"
  "coldboot_vs_voltboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldboot_vs_voltboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

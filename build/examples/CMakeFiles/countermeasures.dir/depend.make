# Empty dependencies file for countermeasures.
# This may be replaced when dependencies are built.

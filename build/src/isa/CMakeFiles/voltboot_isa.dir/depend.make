# Empty dependencies file for voltboot_isa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/voltboot_isa.dir/assembler.cc.o"
  "CMakeFiles/voltboot_isa.dir/assembler.cc.o.d"
  "CMakeFiles/voltboot_isa.dir/cpu.cc.o"
  "CMakeFiles/voltboot_isa.dir/cpu.cc.o.d"
  "CMakeFiles/voltboot_isa.dir/insn.cc.o"
  "CMakeFiles/voltboot_isa.dir/insn.cc.o.d"
  "libvoltboot_isa.a"
  "libvoltboot_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

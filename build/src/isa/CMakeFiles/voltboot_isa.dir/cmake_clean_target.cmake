file(REMOVE_RECURSE
  "libvoltboot_isa.a"
)

file(REMOVE_RECURSE
  "libvoltboot_soc.a"
)

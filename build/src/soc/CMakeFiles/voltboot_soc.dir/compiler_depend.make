# Empty compiler generated dependencies file for voltboot_soc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/voltboot_soc.dir/soc.cc.o"
  "CMakeFiles/voltboot_soc.dir/soc.cc.o.d"
  "CMakeFiles/voltboot_soc.dir/soc_config.cc.o"
  "CMakeFiles/voltboot_soc.dir/soc_config.cc.o.d"
  "libvoltboot_soc.a"
  "libvoltboot_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

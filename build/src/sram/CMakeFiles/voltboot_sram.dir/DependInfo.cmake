
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sram/memory_array.cc" "src/sram/CMakeFiles/voltboot_sram.dir/memory_array.cc.o" "gcc" "src/sram/CMakeFiles/voltboot_sram.dir/memory_array.cc.o.d"
  "/root/repo/src/sram/memory_image.cc" "src/sram/CMakeFiles/voltboot_sram.dir/memory_image.cc.o" "gcc" "src/sram/CMakeFiles/voltboot_sram.dir/memory_image.cc.o.d"
  "/root/repo/src/sram/puf.cc" "src/sram/CMakeFiles/voltboot_sram.dir/puf.cc.o" "gcc" "src/sram/CMakeFiles/voltboot_sram.dir/puf.cc.o.d"
  "/root/repo/src/sram/retention_model.cc" "src/sram/CMakeFiles/voltboot_sram.dir/retention_model.cc.o" "gcc" "src/sram/CMakeFiles/voltboot_sram.dir/retention_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/voltboot_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

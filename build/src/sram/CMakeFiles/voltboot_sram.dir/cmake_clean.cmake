file(REMOVE_RECURSE
  "CMakeFiles/voltboot_sram.dir/memory_array.cc.o"
  "CMakeFiles/voltboot_sram.dir/memory_array.cc.o.d"
  "CMakeFiles/voltboot_sram.dir/memory_image.cc.o"
  "CMakeFiles/voltboot_sram.dir/memory_image.cc.o.d"
  "CMakeFiles/voltboot_sram.dir/puf.cc.o"
  "CMakeFiles/voltboot_sram.dir/puf.cc.o.d"
  "CMakeFiles/voltboot_sram.dir/retention_model.cc.o"
  "CMakeFiles/voltboot_sram.dir/retention_model.cc.o.d"
  "libvoltboot_sram.a"
  "libvoltboot_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

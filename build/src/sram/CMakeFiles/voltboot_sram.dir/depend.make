# Empty dependencies file for voltboot_sram.
# This may be replaced when dependencies are built.

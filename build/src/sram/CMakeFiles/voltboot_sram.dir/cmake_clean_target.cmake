file(REMOVE_RECURSE
  "libvoltboot_sram.a"
)

file(REMOVE_RECURSE
  "libvoltboot_core.a"
)

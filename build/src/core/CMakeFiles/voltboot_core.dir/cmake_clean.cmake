file(REMOVE_RECURSE
  "CMakeFiles/voltboot_core.dir/analysis.cc.o"
  "CMakeFiles/voltboot_core.dir/analysis.cc.o.d"
  "CMakeFiles/voltboot_core.dir/attack.cc.o"
  "CMakeFiles/voltboot_core.dir/attack.cc.o.d"
  "CMakeFiles/voltboot_core.dir/countermeasures.cc.o"
  "CMakeFiles/voltboot_core.dir/countermeasures.cc.o.d"
  "libvoltboot_core.a"
  "libvoltboot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for voltboot_core.
# This may be replaced when dependencies are built.

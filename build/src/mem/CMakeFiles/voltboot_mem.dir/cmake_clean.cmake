file(REMOVE_RECURSE
  "CMakeFiles/voltboot_mem.dir/btb.cc.o"
  "CMakeFiles/voltboot_mem.dir/btb.cc.o.d"
  "CMakeFiles/voltboot_mem.dir/cache.cc.o"
  "CMakeFiles/voltboot_mem.dir/cache.cc.o.d"
  "CMakeFiles/voltboot_mem.dir/memory_system.cc.o"
  "CMakeFiles/voltboot_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/voltboot_mem.dir/tlb.cc.o"
  "CMakeFiles/voltboot_mem.dir/tlb.cc.o.d"
  "libvoltboot_mem.a"
  "libvoltboot_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

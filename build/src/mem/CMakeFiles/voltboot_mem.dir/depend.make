# Empty dependencies file for voltboot_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvoltboot_mem.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/voltboot_os.dir/baremetal.cc.o"
  "CMakeFiles/voltboot_os.dir/baremetal.cc.o.d"
  "CMakeFiles/voltboot_os.dir/linux_model.cc.o"
  "CMakeFiles/voltboot_os.dir/linux_model.cc.o.d"
  "CMakeFiles/voltboot_os.dir/workloads.cc.o"
  "CMakeFiles/voltboot_os.dir/workloads.cc.o.d"
  "libvoltboot_os.a"
  "libvoltboot_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

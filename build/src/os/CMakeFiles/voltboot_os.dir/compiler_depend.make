# Empty compiler generated dependencies file for voltboot_os.
# This may be replaced when dependencies are built.

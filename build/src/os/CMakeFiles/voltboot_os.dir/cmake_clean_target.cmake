file(REMOVE_RECURSE
  "libvoltboot_os.a"
)

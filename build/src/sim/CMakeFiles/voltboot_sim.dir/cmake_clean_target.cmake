file(REMOVE_RECURSE
  "libvoltboot_sim.a"
)

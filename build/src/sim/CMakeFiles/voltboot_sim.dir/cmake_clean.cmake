file(REMOVE_RECURSE
  "CMakeFiles/voltboot_sim.dir/logging.cc.o"
  "CMakeFiles/voltboot_sim.dir/logging.cc.o.d"
  "CMakeFiles/voltboot_sim.dir/rng.cc.o"
  "CMakeFiles/voltboot_sim.dir/rng.cc.o.d"
  "libvoltboot_sim.a"
  "libvoltboot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

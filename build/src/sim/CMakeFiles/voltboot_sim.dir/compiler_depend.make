# Empty compiler generated dependencies file for voltboot_sim.
# This may be replaced when dependencies are built.

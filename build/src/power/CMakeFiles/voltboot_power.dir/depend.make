# Empty dependencies file for voltboot_power.
# This may be replaced when dependencies are built.

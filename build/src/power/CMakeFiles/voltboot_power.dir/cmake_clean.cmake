file(REMOVE_RECURSE
  "CMakeFiles/voltboot_power.dir/board.cc.o"
  "CMakeFiles/voltboot_power.dir/board.cc.o.d"
  "CMakeFiles/voltboot_power.dir/power_domain.cc.o"
  "CMakeFiles/voltboot_power.dir/power_domain.cc.o.d"
  "CMakeFiles/voltboot_power.dir/transient.cc.o"
  "CMakeFiles/voltboot_power.dir/transient.cc.o.d"
  "libvoltboot_power.a"
  "libvoltboot_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

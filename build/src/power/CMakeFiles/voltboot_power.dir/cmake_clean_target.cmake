file(REMOVE_RECURSE
  "libvoltboot_power.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/board.cc" "src/power/CMakeFiles/voltboot_power.dir/board.cc.o" "gcc" "src/power/CMakeFiles/voltboot_power.dir/board.cc.o.d"
  "/root/repo/src/power/power_domain.cc" "src/power/CMakeFiles/voltboot_power.dir/power_domain.cc.o" "gcc" "src/power/CMakeFiles/voltboot_power.dir/power_domain.cc.o.d"
  "/root/repo/src/power/transient.cc" "src/power/CMakeFiles/voltboot_power.dir/transient.cc.o" "gcc" "src/power/CMakeFiles/voltboot_power.dir/transient.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/voltboot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltboot_sram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/voltboot_crypto.dir/aes.cc.o"
  "CMakeFiles/voltboot_crypto.dir/aes.cc.o.d"
  "CMakeFiles/voltboot_crypto.dir/key_corrector.cc.o"
  "CMakeFiles/voltboot_crypto.dir/key_corrector.cc.o.d"
  "CMakeFiles/voltboot_crypto.dir/key_finder.cc.o"
  "CMakeFiles/voltboot_crypto.dir/key_finder.cc.o.d"
  "CMakeFiles/voltboot_crypto.dir/onchip_crypto.cc.o"
  "CMakeFiles/voltboot_crypto.dir/onchip_crypto.cc.o.d"
  "libvoltboot_crypto.a"
  "libvoltboot_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

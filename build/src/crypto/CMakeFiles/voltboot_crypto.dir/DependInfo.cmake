
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/voltboot_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/voltboot_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/key_corrector.cc" "src/crypto/CMakeFiles/voltboot_crypto.dir/key_corrector.cc.o" "gcc" "src/crypto/CMakeFiles/voltboot_crypto.dir/key_corrector.cc.o.d"
  "/root/repo/src/crypto/key_finder.cc" "src/crypto/CMakeFiles/voltboot_crypto.dir/key_finder.cc.o" "gcc" "src/crypto/CMakeFiles/voltboot_crypto.dir/key_finder.cc.o.d"
  "/root/repo/src/crypto/onchip_crypto.cc" "src/crypto/CMakeFiles/voltboot_crypto.dir/onchip_crypto.cc.o" "gcc" "src/crypto/CMakeFiles/voltboot_crypto.dir/onchip_crypto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/voltboot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltboot_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/voltboot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/voltboot_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

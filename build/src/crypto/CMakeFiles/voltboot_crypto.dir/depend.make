# Empty dependencies file for voltboot_crypto.
# This may be replaced when dependencies are built.

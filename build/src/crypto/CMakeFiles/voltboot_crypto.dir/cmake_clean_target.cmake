file(REMOVE_RECURSE
  "libvoltboot_crypto.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sec62_accessible_memory.dir/sec62_accessible_memory.cpp.o"
  "CMakeFiles/sec62_accessible_memory.dir/sec62_accessible_memory.cpp.o.d"
  "sec62_accessible_memory"
  "sec62_accessible_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_accessible_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec62_accessible_memory.
# This may be replaced when dependencies are built.

# Empty dependencies file for figure10_hamming_profile.
# This may be replaced when dependencies are built.

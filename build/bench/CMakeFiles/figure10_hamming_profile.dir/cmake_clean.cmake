file(REMOVE_RECURSE
  "CMakeFiles/figure10_hamming_profile.dir/figure10_hamming_profile.cpp.o"
  "CMakeFiles/figure10_hamming_profile.dir/figure10_hamming_profile.cpp.o.d"
  "figure10_hamming_profile"
  "figure10_hamming_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure10_hamming_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

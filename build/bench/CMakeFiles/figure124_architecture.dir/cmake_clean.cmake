file(REMOVE_RECURSE
  "CMakeFiles/figure124_architecture.dir/figure124_architecture.cpp.o"
  "CMakeFiles/figure124_architecture.dir/figure124_architecture.cpp.o.d"
  "figure124_architecture"
  "figure124_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure124_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

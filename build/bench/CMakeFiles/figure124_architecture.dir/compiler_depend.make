# Empty compiler generated dependencies file for figure124_architecture.
# This may be replaced when dependencies are built.

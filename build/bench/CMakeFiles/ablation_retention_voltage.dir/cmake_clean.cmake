file(REMOVE_RECURSE
  "CMakeFiles/ablation_retention_voltage.dir/ablation_retention_voltage.cpp.o"
  "CMakeFiles/ablation_retention_voltage.dir/ablation_retention_voltage.cpp.o.d"
  "ablation_retention_voltage"
  "ablation_retention_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retention_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_retention_voltage.
# This may be replaced when dependencies are built.

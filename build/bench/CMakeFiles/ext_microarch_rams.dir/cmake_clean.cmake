file(REMOVE_RECURSE
  "CMakeFiles/ext_microarch_rams.dir/ext_microarch_rams.cpp.o"
  "CMakeFiles/ext_microarch_rams.dir/ext_microarch_rams.cpp.o.d"
  "ext_microarch_rams"
  "ext_microarch_rams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_microarch_rams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_microarch_rams.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/figure5_attack_steps.dir/figure5_attack_steps.cpp.o"
  "CMakeFiles/figure5_attack_steps.dir/figure5_attack_steps.cpp.o.d"
  "figure5_attack_steps"
  "figure5_attack_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_attack_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for figure5_attack_steps.
# This may be replaced when dependencies are built.

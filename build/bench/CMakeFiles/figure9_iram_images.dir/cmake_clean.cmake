file(REMOVE_RECURSE
  "CMakeFiles/figure9_iram_images.dir/figure9_iram_images.cpp.o"
  "CMakeFiles/figure9_iram_images.dir/figure9_iram_images.cpp.o.d"
  "figure9_iram_images"
  "figure9_iram_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_iram_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

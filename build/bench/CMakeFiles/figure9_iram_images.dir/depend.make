# Empty dependencies file for figure9_iram_images.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_retention_surface.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_retention_surface.dir/ablation_retention_surface.cpp.o"
  "CMakeFiles/ablation_retention_surface.dir/ablation_retention_surface.cpp.o.d"
  "ablation_retention_surface"
  "ablation_retention_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retention_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for figure3_coldboot_image.
# This may be replaced when dependencies are built.

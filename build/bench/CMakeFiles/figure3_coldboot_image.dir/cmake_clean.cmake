file(REMOVE_RECURSE
  "CMakeFiles/figure3_coldboot_image.dir/figure3_coldboot_image.cpp.o"
  "CMakeFiles/figure3_coldboot_image.dir/figure3_coldboot_image.cpp.o.d"
  "figure3_coldboot_image"
  "figure3_coldboot_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_coldboot_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

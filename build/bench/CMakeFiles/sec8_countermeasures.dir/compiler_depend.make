# Empty compiler generated dependencies file for sec8_countermeasures.
# This may be replaced when dependencies are built.

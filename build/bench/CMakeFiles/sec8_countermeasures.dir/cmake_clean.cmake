file(REMOVE_RECURSE
  "CMakeFiles/sec8_countermeasures.dir/sec8_countermeasures.cpp.o"
  "CMakeFiles/sec8_countermeasures.dir/sec8_countermeasures.cpp.o.d"
  "sec8_countermeasures"
  "sec8_countermeasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_countermeasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table1_coldboot.dir/table1_coldboot.cpp.o"
  "CMakeFiles/table1_coldboot.dir/table1_coldboot.cpp.o.d"
  "table1_coldboot"
  "table1_coldboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_coldboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_coldboot.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_os_dcache.dir/table4_os_dcache.cpp.o"
  "CMakeFiles/table4_os_dcache.dir/table4_os_dcache.cpp.o.d"
  "table4_os_dcache"
  "table4_os_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_os_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table4_os_dcache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/figure7_icache_baremetal.dir/figure7_icache_baremetal.cpp.o"
  "CMakeFiles/figure7_icache_baremetal.dir/figure7_icache_baremetal.cpp.o.d"
  "figure7_icache_baremetal"
  "figure7_icache_baremetal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_icache_baremetal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

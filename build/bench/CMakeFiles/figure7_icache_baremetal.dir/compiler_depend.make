# Empty compiler generated dependencies file for figure7_icache_baremetal.
# This may be replaced when dependencies are built.

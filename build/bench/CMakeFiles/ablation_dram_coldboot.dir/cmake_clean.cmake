file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_coldboot.dir/ablation_dram_coldboot.cpp.o"
  "CMakeFiles/ablation_dram_coldboot.dir/ablation_dram_coldboot.cpp.o.d"
  "ablation_dram_coldboot"
  "ablation_dram_coldboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_coldboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

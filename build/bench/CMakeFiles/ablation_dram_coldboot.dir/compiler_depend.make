# Empty compiler generated dependencies file for ablation_dram_coldboot.
# This may be replaced when dependencies are built.

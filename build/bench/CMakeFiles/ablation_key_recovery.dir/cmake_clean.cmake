file(REMOVE_RECURSE
  "CMakeFiles/ablation_key_recovery.dir/ablation_key_recovery.cpp.o"
  "CMakeFiles/ablation_key_recovery.dir/ablation_key_recovery.cpp.o.d"
  "ablation_key_recovery"
  "ablation_key_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_key_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

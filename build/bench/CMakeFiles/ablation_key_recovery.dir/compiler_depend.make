# Empty compiler generated dependencies file for ablation_key_recovery.
# This may be replaced when dependencies are built.

# Empty dependencies file for table3_testpads.
# This may be replaced when dependencies are built.

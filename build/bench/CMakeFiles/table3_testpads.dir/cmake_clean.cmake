file(REMOVE_RECURSE
  "CMakeFiles/table3_testpads.dir/table3_testpads.cpp.o"
  "CMakeFiles/table3_testpads.dir/table3_testpads.cpp.o.d"
  "table3_testpads"
  "table3_testpads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_testpads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

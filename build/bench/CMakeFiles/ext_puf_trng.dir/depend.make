# Empty dependencies file for ext_puf_trng.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_puf_trng.dir/ext_puf_trng.cpp.o"
  "CMakeFiles/ext_puf_trng.dir/ext_puf_trng.cpp.o.d"
  "ext_puf_trng"
  "ext_puf_trng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_puf_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sec72_registers.dir/sec72_registers.cpp.o"
  "CMakeFiles/sec72_registers.dir/sec72_registers.cpp.o.d"
  "sec72_registers"
  "sec72_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

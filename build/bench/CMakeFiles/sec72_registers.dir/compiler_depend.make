# Empty compiler generated dependencies file for sec72_registers.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/figure8_os_snapshots.cpp" "bench/CMakeFiles/figure8_os_snapshots.dir/figure8_os_snapshots.cpp.o" "gcc" "bench/CMakeFiles/figure8_os_snapshots.dir/figure8_os_snapshots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/voltboot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/voltboot_os.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/voltboot_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/voltboot_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/voltboot_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/voltboot_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/voltboot_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltboot_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/voltboot_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/figure8_os_snapshots.dir/figure8_os_snapshots.cpp.o"
  "CMakeFiles/figure8_os_snapshots.dir/figure8_os_snapshots.cpp.o.d"
  "figure8_os_snapshots"
  "figure8_os_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_os_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

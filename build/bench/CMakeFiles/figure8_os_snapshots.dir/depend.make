# Empty dependencies file for figure8_os_snapshots.
# This may be replaced when dependencies are built.

# Empty dependencies file for key_corrector_test.
# This may be replaced when dependencies are built.

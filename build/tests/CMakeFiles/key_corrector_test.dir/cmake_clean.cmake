file(REMOVE_RECURSE
  "CMakeFiles/key_corrector_test.dir/key_corrector_test.cpp.o"
  "CMakeFiles/key_corrector_test.dir/key_corrector_test.cpp.o.d"
  "key_corrector_test"
  "key_corrector_test.pdb"
  "key_corrector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_corrector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sram_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/key_corrector_test[1]_include.cmake")
include("/root/repo/build/tests/puf_test[1]_include.cmake")
include("/root/repo/build/tests/aging_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/voltboot_cli.dir/voltboot_cli.cpp.o"
  "CMakeFiles/voltboot_cli.dir/voltboot_cli.cpp.o.d"
  "voltboot_cli"
  "voltboot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltboot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for voltboot_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/calibrate_table4.dir/calibrate_table4.cpp.o"
  "CMakeFiles/calibrate_table4.dir/calibrate_table4.cpp.o.d"
  "calibrate_table4"
  "calibrate_table4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_table4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

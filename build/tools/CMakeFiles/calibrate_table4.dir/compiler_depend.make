# Empty compiler generated dependencies file for calibrate_table4.
# This may be replaced when dependencies are built.
